#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/shard_kernel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tribvote::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(1, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnDefault) {
  EventHandle h;
  h.cancel();  // no crash
  EXPECT_FALSE(h.pending());
  EventQueue q;
  EventHandle h2 = q.schedule(1, [] {});
  h2.cancel();
  h2.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledEventSkippedAmongLive) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] { order.push_back(1); });
  EventHandle h = q.schedule(2, [&] { order.push_back(2); });
  q.schedule(3, [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReflectsEarliestLive) {
  EventQueue q;
  EventHandle h = q.schedule(5, [] {});
  q.schedule(9, [] {});
  EXPECT_EQ(q.next_time(), 5);
  h.cancel();
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, CancelAfterFireIsHarmless) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.schedule(1, [&] { ++runs; });
  q.pop().second();
  EXPECT_FALSE(h.pending());  // fired events are no longer pending
  h.cancel();                 // must not corrupt the dead-entry accounting
  q.schedule(2, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(runs, 1);
}

TEST(EventQueue, MassCancelDoesNotGrowTheHeap) {
  // Regression: lazily-cancelled entries used to stay in the heap until
  // their deadline, so schedule/cancel churn (PeriodicTask re-arms, fault
  // retries) grew memory without bound. Compaction must keep the live set
  // plus a bounded slack.
  EventQueue q;
  constexpr int kChurn = 1'000'000;
  int fired = 0;
  q.schedule(kChurn + 10, [&] { ++fired; });
  for (int i = 0; i < kChurn; ++i) {
    EventHandle h = q.schedule(i + 5, [&] { ++fired; });
    h.cancel();
    EXPECT_LE(q.size(), 256u) << "heap grew without bound at i=" << i;
  }
  EXPECT_GT(q.compactions(), 0u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);  // only the keeper survived
}

TEST(EventQueue, OrderingSurvivesCompaction) {
  // Interleave live and cancelled events so several compactions happen
  // while live entries are in flight; the live firing order must be
  // untouched.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 999; i >= 0; --i) {
    q.schedule(i, [&order, i] { order.push_back(i); });
    for (int k = 0; k < 20; ++k) {
      doomed.push_back(q.schedule(i, [] { FAIL() << "cancelled event ran"; }));
    }
    for (int k = 0; k < 20; ++k) {
      doomed.back().cancel();
      doomed.pop_back();
    }
  }
  EXPECT_GT(q.compactions(), 0u);
  while (!q.empty()) q.pop().second();
  ASSERT_EQ(order.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.schedule_at(10, [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(25, [&] { stamps.push_back(sim.now()); });
  sim.run_until(100);
  EXPECT_EQ(stamps, (std::vector<Time>{10, 25}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilExecutesBoundaryEvents) {
  Simulator sim;
  bool at_boundary = false, beyond = false;
  sim.schedule_at(50, [&] { at_boundary = true; });
  sim.schedule_at(51, [&] { beyond = true; });
  sim.run_until(50);
  EXPECT_TRUE(at_boundary);
  EXPECT_FALSE(beyond);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule_at(40, [&] {
    sim.schedule_in(5, [&] { fired_at = sim.now(); });
  });
  sim.run_until(100);
  EXPECT_EQ(fired_at, 45);
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_in(0, [&] { order.push_back(2); });
  });
  sim.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_until(100);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(PeriodicTask, FiresOnPeriod) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTask task(sim, 10, [&] { fires.push_back(sim.now()); });
  task.start();
  sim.run_until(35);
  EXPECT_EQ(fires, (std::vector<Time>{10, 20, 30}));
}

TEST(PeriodicTask, CustomPhase) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTask task(sim, 10, [&] { fires.push_back(sim.now()); });
  task.start(/*phase=*/3);
  sim.run_until(25);
  EXPECT_EQ(fires, (std::vector<Time>{3, 13, 23}));
}

TEST(PeriodicTask, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 10, [&] { ++count; });
  task.start();
  sim.run_until(25);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, CanStopItselfFromCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 5, [&] {
    if (++count == 3) task.stop();
  });
  task.start();
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 5, [&] { ++count; });
    task.start();
    sim.run_until(12);
  }
  sim.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, RestartReschedules) {
  Simulator sim;
  std::vector<Time> fires;
  PeriodicTask task(sim, 10, [&] { fires.push_back(sim.now()); });
  task.start();
  sim.run_until(15);            // fired at 10
  task.start();                 // re-arm: next at 25
  sim.run_until(40);
  EXPECT_EQ(fires, (std::vector<Time>{10, 25, 35}));
}

/// A random pairing like a gossip round produces: each node initiates once
/// (shuffled order), responders drawn uniformly.
std::vector<Encounter> random_round(std::size_t n, util::Rng& rng) {
  std::vector<PeerId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<PeerId>(i);
  rng.shuffle(order);
  std::vector<Encounter> encounters;
  for (const PeerId i : order) {
    const auto j = static_cast<PeerId>(rng.next_below(n));
    if (j == i) continue;
    encounters.push_back(
        {static_cast<std::uint32_t>(encounters.size()), i, j});
  }
  return encounters;
}

/// Record, per node, the sequence numbers of its encounters in execution
/// order. The exchange body touches exactly the two endpoint slots — the
/// kernel's safety contract makes that race-free at any shard count.
std::vector<std::vector<std::uint32_t>> per_node_order(
    std::size_t n, const std::vector<Encounter>& encounters,
    std::size_t shards, util::ThreadPool* pool) {
  ShardKernel kernel(n, shards, pool);
  std::vector<std::vector<std::uint32_t>> seen(n);
  kernel.run_round(encounters, [&](const Encounter& e, std::size_t) {
    seen[e.initiator].push_back(e.seq);
    seen[e.responder].push_back(e.seq);
  });
  return seen;
}

TEST(ShardKernel, SerialFastPathExecutesInSequence) {
  util::Rng rng(1);
  const auto encounters = random_round(50, rng);
  ShardKernel kernel(50, 1, nullptr);
  std::vector<std::uint32_t> executed;
  kernel.run_round(encounters, [&](const Encounter& e, std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    executed.push_back(e.seq);
  });
  ASSERT_EQ(executed.size(), encounters.size());
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
  EXPECT_EQ(kernel.stats().mailed, 0u);
}

TEST(ShardKernel, PerNodeOrderIsSerialOrderAtAnyShardCount) {
  constexpr std::size_t kNodes = 64;
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const auto encounters = random_round(kNodes, rng);
    const auto serial = per_node_order(kNodes, encounters, 1, nullptr);
    for (const std::size_t shards : {2u, 3u, 5u, 8u}) {
      EXPECT_EQ(per_node_order(kNodes, encounters, shards, nullptr), serial)
          << "shards=" << shards;
    }
  }
}

TEST(ShardKernel, PerNodeOrderHoldsOnRealWorkerPool) {
  constexpr std::size_t kNodes = 64;
  util::Rng rng(9);
  util::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const auto encounters = random_round(kNodes, rng);
    const auto serial = per_node_order(kNodes, encounters, 1, nullptr);
    EXPECT_EQ(per_node_order(kNodes, encounters, 4, &pool), serial);
  }
}

TEST(ShardKernel, CrossShardEncountersGoThroughMailboxes) {
  util::Rng rng(11);
  const auto encounters = random_round(64, rng);
  std::size_t cross = 0;
  for (const Encounter& e : encounters) {
    if (e.initiator % 4 != e.responder % 4) ++cross;
  }
  ShardKernel kernel(64, 4, nullptr);
  kernel.run_round(encounters, [](const Encounter&, std::size_t) {});
  EXPECT_EQ(kernel.stats().mailed, cross);
  EXPECT_EQ(kernel.stats().local + kernel.stats().mailed, encounters.size());
  EXPECT_GT(kernel.stats().levels, 0u);
}

TEST(ShardKernel, MailboxesDrainEvenWhenExchangesDeclineToAct) {
  // Fault-plane contract: an exchange body that does nothing (unreachable
  // endpoint, crashed responder) must still leave every cross-shard mailbox
  // empty after the round — mail is drained by the kernel, not by the body.
  util::Rng rng(13);
  util::ThreadPool pool(4);
  ShardKernel kernel(64, 4, &pool);
  for (int round = 0; round < 10; ++round) {
    const auto encounters = random_round(64, rng);
    // Decline every other encounter, mimicking a fault verdict table.
    kernel.run_round(encounters, [](const Encounter& e, std::size_t) {
      if (e.seq % 2 == 0) return;  // "unreachable": no-op exchange
    });
    EXPECT_EQ(kernel.pending_mail(), 0u) << "round " << round;
  }
  EXPECT_GT(kernel.stats().mailed, 0u);  // the contract was actually tested
}

TEST(ShardKernel, ForEachNodeCoversPopulationOncePerNode) {
  util::ThreadPool pool(3);
  ShardKernel kernel(101, 3, &pool);
  std::vector<int> hits(101, 0);
  kernel.for_each_node([&](PeerId id, std::size_t lane) {
    EXPECT_EQ(lane, id % 3);
    ++hits[id];  // safe: each id visited by exactly one lane
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace tribvote::sim
