#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tribvote::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234, s2 = 1234;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(3);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ±5 sigma-ish slack
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(6);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(7);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(9);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.next_exponential(1.0), 0.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0, sq = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.02);
}

TEST(Rng, LognormalMedianMatches) {
  Rng rng(12);
  std::vector<double> draws;
  for (int i = 0; i < 50001; ++i) draws.push_back(rng.next_lognormal(2.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + 25000, draws.end());
  EXPECT_NEAR(draws[25000], std::exp(2.0), 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(14);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleIndicesFullDraw) {
  Rng rng(16);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesEmpty) {
  Rng rng(17);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
  EXPECT_TRUE(rng.sample_indices(0, 0).empty());
}

TEST(Rng, DeriveIsIndependentOfParentDraws) {
  Rng a(99);
  Rng b(99);
  (void)a();  // advance parent a only
  Rng child_a = a.derive(5);
  Rng child_b = b.derive(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a(), child_b());
}

TEST(Rng, DeriveDifferentKeysDiverge) {
  Rng a(99);
  Rng c1 = a.derive(1);
  Rng c2 = a.derive(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace tribvote::util
