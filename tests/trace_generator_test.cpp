#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "trace/analyzer.hpp"

namespace tribvote::trace {
namespace {

class GeneratorDefaults : public ::testing::Test {
 protected:
  static const Trace& trace() {
    static const Trace tr = generate_trace(GeneratorParams{}, 42);
    return tr;
  }
  static const TraceStats& stats() {
    static const TraceStats st = analyze(trace());
    return st;
  }
};

TEST_F(GeneratorDefaults, Determinism) {
  const Trace a = generate_trace(GeneratorParams{}, 42);
  EXPECT_EQ(a.sessions.size(), trace().sessions.size());
  EXPECT_EQ(a.joins.size(), trace().joins.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].peer, trace().sessions[i].peer);
    EXPECT_EQ(a.sessions[i].start, trace().sessions[i].start);
    EXPECT_EQ(a.sessions[i].end, trace().sessions[i].end);
  }
}

TEST_F(GeneratorDefaults, DifferentSeedsDiffer) {
  const Trace b = generate_trace(GeneratorParams{}, 43);
  EXPECT_NE(b.sessions.size(), trace().sessions.size());
}

TEST_F(GeneratorDefaults, PaperScale) {
  EXPECT_EQ(trace().peers.size(), 100u);
  EXPECT_EQ(trace().duration, 7 * kDay);
  // "approximately 23,000 unique events"
  EXPECT_GT(stats().n_events, 18000u);
  EXPECT_LT(stats().n_events, 30000u);
}

TEST_F(GeneratorDefaults, OnlineFractionNearHalf) {
  // "on average only 50% of the total population of nodes are online"
  EXPECT_GT(stats().avg_online_fraction, 0.35);
  EXPECT_LT(stats().avg_online_fraction, 0.60);
}

TEST_F(GeneratorDefaults, FreeRiderFractionNearQuarter) {
  // "approximately 25% of peers uploaded little to others"
  EXPECT_GT(stats().free_rider_fraction, 0.12);
  EXPECT_LT(stats().free_rider_fraction, 0.40);
}

TEST_F(GeneratorDefaults, SomePeersRarelyPresent) {
  EXPECT_GT(stats().rare_peer_fraction, 0.0);
  EXPECT_LT(stats().rare_peer_fraction, 0.30);
}

TEST_F(GeneratorDefaults, SessionsSortedAndWithinHorizon) {
  Time prev = 0;
  for (const auto& s : trace().sessions) {
    EXPECT_LE(prev, s.start);
    prev = s.start;
    EXPECT_LT(s.start, s.end);
    EXPECT_LE(s.end, trace().duration);
    EXPECT_LT(s.peer, trace().peers.size());
  }
}

TEST_F(GeneratorDefaults, SessionsRespectArrival) {
  for (const auto& s : trace().sessions) {
    EXPECT_GE(s.start, trace().peers[s.peer].arrival);
  }
}

TEST_F(GeneratorDefaults, SessionsDoNotOverlapPerPeer) {
  std::vector<Time> last_end(trace().peers.size(), -1);
  for (const auto& s : trace().sessions) {
    EXPECT_GE(s.start, last_end[s.peer]) << "peer " << s.peer;
    last_end[s.peer] = s.end;
  }
}

TEST_F(GeneratorDefaults, JoinsFallInsideASession) {
  for (const auto& j : trace().joins) {
    bool inside = false;
    for (const auto& s : trace().sessions) {
      if (s.peer == j.peer && s.start <= j.at && j.at < s.end) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << "join by " << j.peer << " at " << j.at;
  }
}

TEST_F(GeneratorDefaults, JoinsAfterSwarmCreation) {
  for (const auto& j : trace().joins) {
    EXPECT_GE(j.at, trace().swarms[j.swarm].created);
  }
}

TEST_F(GeneratorDefaults, NoDuplicateJoins) {
  std::set<std::pair<PeerId, SwarmId>> seen;
  for (const auto& j : trace().joins) {
    EXPECT_TRUE(seen.insert({j.peer, j.swarm}).second)
        << "duplicate join " << j.peer << "/" << j.swarm;
  }
}

TEST_F(GeneratorDefaults, SeederNeverJoinsOwnSwarm) {
  for (const auto& j : trace().joins) {
    EXPECT_NE(j.peer, trace().swarms[j.swarm].initial_seeder);
  }
}

TEST_F(GeneratorDefaults, SwarmsWellFormed) {
  GeneratorParams params;
  ASSERT_EQ(trace().swarms.size(), params.n_swarms);
  for (const auto& sw : trace().swarms) {
    EXPECT_GE(sw.size_mb, params.size_lo_mb);
    EXPECT_LE(sw.size_mb, params.size_hi_mb);
    EXPECT_GT(sw.piece_count(), 0);
    EXPECT_LT(sw.initial_seeder, trace().peers.size());
    // Seeders are founders: present from the start.
    EXPECT_EQ(trace().peers[sw.initial_seeder].arrival, 0);
  }
}

TEST(Generator, DatasetProducesDistinctTraces) {
  const auto traces = generate_dataset(GeneratorParams{}, 7, 5);
  ASSERT_EQ(traces.size(), 5u);
  std::set<std::size_t> session_counts;
  for (const auto& tr : traces) session_counts.insert(tr.sessions.size());
  EXPECT_GT(session_counts.size(), 1u);
}

TEST(Generator, SmallPopulationWorks) {
  GeneratorParams params;
  params.n_peers = 8;
  params.n_swarms = 2;
  params.duration = kDay;
  const Trace tr = generate_trace(params, 1);
  EXPECT_EQ(tr.peers.size(), 8u);
  EXPECT_FALSE(tr.sessions.empty());
}

TEST(Generator, EventCountScalesWithDuration) {
  GeneratorParams short_params;
  short_params.duration = kDay;
  GeneratorParams long_params;
  long_params.duration = 4 * kDay;
  const auto short_tr = generate_trace(short_params, 5);
  const auto long_tr = generate_trace(long_params, 5);
  EXPECT_GT(long_tr.event_count(), 2 * short_tr.event_count());
}

TEST(EarliestArrivals, ReturnsFoundersFirst) {
  const Trace tr = generate_trace(GeneratorParams{}, 42);
  const auto firsts = earliest_arrivals(tr, 10);
  ASSERT_EQ(firsts.size(), 10u);
  for (const PeerId p : firsts) {
    EXPECT_EQ(tr.peers[p].arrival, 0) << "peer " << p;
  }
  // Requesting more than the population clamps.
  EXPECT_EQ(earliest_arrivals(tr, 1000).size(), tr.peers.size());
}

TEST(OnlineCount, MatchesManualScan) {
  const Trace tr = generate_trace(GeneratorParams{}, 42);
  const Time t = 36 * kHour;
  std::size_t manual = 0;
  for (const auto& s : tr.sessions) {
    if (s.start <= t && t < s.end) ++manual;
  }
  EXPECT_EQ(online_count(tr, t), manual);
}

}  // namespace
}  // namespace tribvote::trace
