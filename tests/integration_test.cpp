// End-to-end integration tests: miniature versions of the paper's three
// experiments, run on small fast traces, asserting the qualitative results
// (experience forms; vote sampling converges to the correct ordering; a
// flash crowd pollutes bootstrapping nodes through VoxPopuli but not the
// experienced core, and victims recover).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "metrics/cev.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

namespace tribvote::core {
namespace {

trace::Trace mini_trace(std::uint64_t seed, std::uint32_t peers = 30,
                        Duration duration = 2 * kDay) {
  trace::GeneratorParams params;
  params.n_peers = peers;
  params.n_swarms = 4;
  params.duration = duration;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  return trace::generate_trace(params, seed);
}

TEST(Integration, ExperienceFormsOverTime) {
  const trace::Trace tr = mini_trace(11);
  ScenarioConfig config;
  config.shards = 2;  // results are shard-count invariant by construction
  ScenarioRunner runner(tr, config, 1);

  std::vector<double> cev_samples;
  util::ThreadPool pool(4);
  runner.sample_every(12 * kHour, [&](Time) {
    cev_samples.push_back(runner.collective_experience(
        config.experience_threshold_mb, &pool));
  });
  runner.run_until(tr.duration);

  ASSERT_GE(cev_samples.size(), 4u);
  EXPECT_EQ(cev_samples.front(), 0.0);
  EXPECT_GT(cev_samples.back(), 0.05);  // a core formed
  // CEV is (weakly) increasing: experience never evaporates.
  for (std::size_t i = 1; i < cev_samples.size(); ++i) {
    EXPECT_GE(cev_samples[i], cev_samples[i - 1] - 1e-9);
  }
}

TEST(Integration, LowerThresholdMeansMoreExperience) {
  const trace::Trace tr = mini_trace(12);
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 2);
  runner.run_until(tr.duration);
  const auto agents = runner.barter_agents();
  const std::span<const bartercast::BarterAgent* const> span(
      agents.data(), tr.peers.size());
  const double cev1 = metrics::collective_experience_value(span, 1.0);
  const double cev5 = metrics::collective_experience_value(span, 5.0);
  const double cev50 = metrics::collective_experience_value(span, 50.0);
  EXPECT_GE(cev1, cev5);
  EXPECT_GE(cev5, cev50);
  EXPECT_GT(cev1, 0.0);
}

TEST(Integration, VoteSamplingConvergesToCorrectOrdering) {
  const trace::Trace tr = mini_trace(13, 40, 3 * kDay);
  ScenarioConfig config;
  config.shards = 4;  // full qualitative scenario on the sharded kernel
  ScenarioRunner runner(tr, config, 3);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good");
  runner.publish_moderation(m2, 10 * kMinute, "neutral");
  runner.publish_moderation(m3, 10 * kMinute, "bad");
  // 20% vote +M1, 20% vote -M3 (denser than the paper's 10% to converge on
  // this small population).
  util::Rng pick(4);
  const auto voters = pick.sample_indices(tr.peers.size(), 16);
  for (std::size_t i = 0; i < voters.size(); ++i) {
    const auto v = static_cast<PeerId>(voters[i]);
    if (v == m1 || v == m2 || v == m3) continue;
    if (i % 2 == 0) {
      runner.script_vote_on_receipt(v, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(v, m3, Opinion::kNegative);
    }
  }
  runner.run_until(tr.duration);

  std::vector<vote::RankedList> rankings;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != m1 && p != m2 && p != m3) {
      rankings.push_back(runner.ranking_of(p));
    }
  }
  const std::vector<ModeratorId> expected{m1, m2, m3};
  EXPECT_GT(metrics::correct_ordering_fraction(rankings, expected), 0.6);
}

TEST(Integration, FlashCrowdPollutesThenRecoveryHolds) {
  const trace::Trace tr = mini_trace(14, 40, 2 * kDay);
  ScenarioConfig config;
  config.attack.crowd_size = 50;  // overwhelming vs ~20 online honest
  config.attack.start = 0;
  config.attack.duty = 1.0;       // maximal pressure for this test

  ScenarioRunner runner(tr, config, 5);
  const ModeratorId m0 = runner.spam_moderator();

  // Pre-converged core: the 10 earliest arrivals all voted +M1 and hold
  // each other's votes (past B_min), plus mutual transfer history so they
  // are experienced for each other and for newcomers they upload to.
  const auto core = trace::earliest_arrivals(tr, 10);
  const ModeratorId m1 = core.front();
  runner.publish_moderation(m1, kMinute, "the real thing");
  for (const PeerId a : core) {
    if (a != m1) runner.cast_vote_now(a, m1, Opinion::kPositive);
    for (const PeerId b : core) {
      if (a != b) {
        runner.preseed_transfer(a, b, 25.0);
        runner.preload_ballot(a, b, m1, Opinion::kPositive);
      }
    }
  }

  std::vector<double> new_node_pollution;
  std::vector<double> core_pollution;
  const auto is_core = [&](PeerId p) {
    return std::find(core.begin(), core.end(), p) != core.end();
  };
  runner.sample_every(6 * kHour, [&](Time t) {
    std::vector<vote::RankedList> fresh, core_rankings;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (!runner.has_arrived(p, t)) continue;
      if (is_core(p)) {
        core_rankings.push_back(runner.ranking_of(p));
      } else {
        fresh.push_back(runner.ranking_of(p));
      }
    }
    new_node_pollution.push_back(metrics::pollution_fraction(fresh, m0));
    core_pollution.push_back(metrics::pollution_fraction(core_rankings, m0));
  });
  runner.run_until(tr.duration);

  // The experienced core is never polluted — colluders fail E.
  for (const double p : core_pollution) EXPECT_EQ(p, 0.0);
  // New nodes are polluted at some point (VoxPopuli window)...
  const double peak =
      *std::max_element(new_node_pollution.begin(), new_node_pollution.end());
  EXPECT_GT(peak, 0.3);
  // ...but recover: final pollution well below the peak.
  EXPECT_LT(new_node_pollution.back(), peak * 0.7);
}

TEST(Integration, BootstrapCompletesUnderThirtyPercentLoss) {
  // Robustness acceptance bar: with 30 % message loss (plus the scaled
  // companion faults the A11 sweep uses at that level), at least 95 % of
  // honest arrived nodes still complete VoxPopuli bootstrap — retries,
  // re-offers and one-sided exchanges keep the sampling liveness intact.
  const trace::Trace tr = mini_trace(21, 30, 3 * kDay);
  ScenarioConfig config;
  config.faults.loss = 0.3;
  config.faults.delay_rate = 0.15;
  config.faults.max_delay = 120;
  config.faults.corrupt_rate = 0.06;
  config.faults.crash_rate = 0.01;
  ScenarioRunner runner(tr, config, 7);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good");
  runner.publish_moderation(m2, 10 * kMinute, "neutral");
  runner.publish_moderation(m3, 10 * kMinute, "bad");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p == m1 || p == m2 || p == m3) continue;
    runner.script_vote_on_receipt(p, p % 2 == 0 ? m1 : m3,
                                  p % 2 == 0 ? Opinion::kPositive
                                             : Opinion::kNegative);
  }
  runner.run_until(tr.duration);

  std::size_t arrived = 0, bootstrapped = 0;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p == m1 || p == m2 || p == m3) continue;
    if (!runner.has_arrived(p, tr.duration)) continue;
    ++arrived;
    if (!runner.node(p).vote().bootstrapping()) ++bootstrapped;
  }
  ASSERT_GT(arrived, 0u);
  EXPECT_GE(static_cast<double>(bootstrapped),
            0.95 * static_cast<double>(arrived))
      << bootstrapped << " of " << arrived << " bootstrapped";
  // The transport was genuinely hostile while it happened.
  EXPECT_GT(runner.fault_stats().total().dropped_requests, 0u);
  EXPECT_GT(runner.fault_stats().total().retries, 0u);
}

TEST(Integration, ChaosTransportNeverCrashesNorPoisons) {
  // Worst-case fuzz: every fault class at an extreme rate, on the sharded
  // kernel, with an attack running. The assertions are survival (the run
  // completes), drained mailboxes, and damage that is *accounted* —
  // corrupted payloads were rejected by signature checks, never merged.
  const trace::Trace tr = mini_trace(22, 30, kDay);
  ScenarioConfig config;
  config.shards = 4;
  config.faults.loss = 0.5;
  config.faults.delay_rate = 0.4;
  config.faults.max_delay = 300;
  config.faults.crash_rate = 0.1;
  config.faults.corrupt_rate = 0.5;
  config.attack.crowd_size = 10;
  config.attack.start = kHour;
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  ScenarioRunner runner(tr, config, 8);
  const auto firsts = trace::earliest_arrivals(tr, 1);
  runner.publish_moderation(firsts[0], kMinute, "survives chaos");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != firsts[0]) {
      runner.script_vote_on_receipt(p, firsts[0], Opinion::kPositive);
    }
  }
  runner.run_until(tr.duration);

  EXPECT_EQ(runner.pending_mail(), 0u);
  const sim::FaultCounters total = runner.fault_stats().total();
  EXPECT_GT(total.corrupted, 0u);
  EXPECT_GT(total.rejected, 0u);
  EXPECT_GT(total.crashes, 0u);
  EXPECT_GT(total.one_sided, 0u);
  // Progress under fire: the protocols did not deadlock or wedge.
  EXPECT_GT(runner.stats().vote_exchanges, 0u);
  EXPECT_GT(runner.stats().votes_accepted, 0u);
  // The delta gossip path ran under chaos: digests opened exchanges,
  // damaged digests fell back to full retransmits, the vote-history cache
  // served warm messages — and none of it poisoned a box (corruption was
  // fully accounted as rejections above).
  const telemetry::Registry& reg = runner.telemetry()->registry();
  EXPECT_GT(reg.total_by_name("gossip.delta_exchanges"), 0u);
  EXPECT_GT(reg.total_by_name("gossip.full_exchanges"), 0u);
  EXPECT_GT(reg.total_by_name("gossip.digest_fallbacks"), 0u);
  EXPECT_GT(reg.total_by_name("gossip.cache_hits"), 0u);
  EXPECT_GT(reg.total_by_name("gossip.bytes_sent"),
            reg.total_by_name("gossip.signatures"));
}

TEST(Integration, NoAttackMeansNoPollution) {
  const trace::Trace tr = mini_trace(15, 30, kDay);
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 6);
  const auto firsts = trace::earliest_arrivals(tr, 1);
  runner.publish_moderation(firsts[0], kMinute, "fine");
  runner.run_until(tr.duration);
  EXPECT_EQ(runner.spam_moderator(), kInvalidModerator);
  EXPECT_EQ(runner.colluders().size(), 0u);
}

}  // namespace
}  // namespace tribvote::core
