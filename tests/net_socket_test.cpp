// End-to-end socket plane: EventLoop + NodeService over real loopback TCP.
//
// Two NodeServices share one event loop in-process; everything an
// encounter produces crosses an actual kernel socket. The final agent
// states must match the sim oracle exactly (the top rung of the DESIGN.md
// §13 equivalence ladder), and the transport error paths — malformed
// headers, CRC rejects, truncated streams, reconnects — must land in the
// right NetStats / net.* telemetry counters.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "crypto/schnorr.hpp"
#include "net/codec.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/node_service.hpp"
#include "telemetry/registry.hpp"
#include "vote/agent.hpp"
#include "vote/encounter.hpp"

namespace tribvote::net {
namespace {

constexpr int kStepMs = 2000;  ///< generous per-condition loop budget

struct Twin {
  crypto::KeyPair keys;
  std::unique_ptr<vote::VoteAgent> sim;
  std::unique_ptr<vote::VoteAgent> wire;

  void cast(ModeratorId m, Opinion op, Time t) {
    sim->cast_vote(m, op, t);
    wire->cast_vote(m, op, t);
  }
};

Twin make_twin(PeerId id, std::uint64_t seed) {
  Twin t;
  util::Rng krng(seed);
  t.keys = crypto::generate_keypair(krng);
  const auto exp = [](PeerId) { return true; };
  t.sim = std::make_unique<vote::VoteAgent>(id, t.keys, vote::VoteConfig{},
                                            exp, util::Rng(seed * 7919 + 1));
  t.wire = std::make_unique<vote::VoteAgent>(id, t.keys, vote::VoteConfig{},
                                             exp, util::Rng(seed * 7919 + 1));
  return t;
}

/// Both services on one loop: poll until `done` or fail the test.
void drive(EventLoop& loop, const std::function<bool()>& done) {
  ASSERT_TRUE(loop.run_until(done, kStepMs)) << "loop condition timed out";
}

/// A raw blocking client socket for hostile-bytes tests.
int raw_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

// ---- the tentpole equivalence: TCP session == sim oracle -------------------

TEST(NetSocket, TcpSessionStateMatchesSimOracle) {
  Twin a = make_twin(1, 1001);  // listener
  Twin b = make_twin(2, 1002);  // dialer / initiator
  a.cast(10, Opinion::kPositive, 50);
  a.cast(11, Opinion::kNegative, 60);
  b.cast(10, Opinion::kPositive, 55);

  EventLoop loop;
  telemetry::Registry registry(1);
  NodeService svc_a(loop, 1, a.keys, *a.wire, nullptr, &registry);
  NodeService svc_b(loop, 2, b.keys, *b.wire, nullptr, nullptr);
  std::string err;
  ASSERT_TRUE(svc_a.listen(0, &err)) << err;
  ASSERT_GT(svc_a.listen_port(), 0);
  const int cb = svc_b.connect("127.0.0.1", svc_a.listen_port(), &err);
  ASSERT_GE(cb, 0) << err;

  drive(loop, [&] {
    return svc_b.ready(cb) && svc_a.connection_count() == 1 &&
           svc_a.ready(svc_a.connections().front());
  });
  const int ca = svc_a.connections().front();
  EXPECT_EQ(svc_a.peer_of(ca), 2u);
  EXPECT_EQ(svc_b.peer_of(cb), 1u);

  // Three encounters with casts in between — cold full, warm delta,
  // digest-only steady state, all over the real socket.
  const Time times[] = {100, 200, 300};
  for (int round = 0; round < 3; ++round) {
    if (round == 1) {
      b.cast(12, Opinion::kPositive, 150);
      a.cast(13, Opinion::kNegative, 160);
    }
    vote::vote_exchange(*b.sim, *a.sim, times[round]);
    ASSERT_TRUE(svc_b.initiate_vote_encounter(cb, times[round]));
    const std::uint64_t want = static_cast<std::uint64_t>(round) + 1;
    drive(loop, [&] {
      return svc_b.initiator_idle(cb) &&
             svc_b.engine_counters(cb)->encounters_completed == want &&
             svc_a.engine_counters(ca)->encounters_served == want;
    });
  }

  // The tentpole claim: byte-identical protocol state on both paths.
  EXPECT_EQ(a.sim->state_digest(), a.wire->state_digest());
  EXPECT_EQ(b.sim->state_digest(), b.wire->state_digest());
  EXPECT_GT(svc_b.engine_counters(cb)->open_digest, 0u);

  // Quiescence: BYE both ways, then close.
  svc_b.send_bye(cb);
  svc_a.send_bye(ca);
  drive(loop, [&] { return svc_b.bye_received(cb) && svc_a.bye_received(ca); });
  svc_b.close(cb);
  drive(loop, [&] { return svc_a.connection_count() == 0; });

  // Transport accounting flowed into NetStats and the telemetry plane.
  EXPECT_GT(svc_a.stats().frames_in, 0u);
  EXPECT_GT(svc_a.stats().bytes_in, 0u);
  EXPECT_EQ(svc_a.stats().connections_in, 1u);
  EXPECT_EQ(svc_b.stats().connections_out, 1u);
  EXPECT_EQ(registry.total_by_name("net.frames_in"), svc_a.stats().frames_in);
  EXPECT_EQ(registry.total_by_name("net.bytes_out"), svc_a.stats().bytes_out);
}

TEST(NetSocket, SimultaneousInitiationOnBothChannels) {
  // Channels make simultaneous initiation conflict-free: each side opens
  // its own encounter on its own channel over the same connection.
  Twin a = make_twin(1, 2001);
  Twin b = make_twin(2, 2002);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EventLoop loop;
  NodeService svc_a(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  NodeService svc_b(loop, 2, b.keys, *b.wire, nullptr, nullptr);
  ASSERT_TRUE(svc_a.listen(0));
  const int cb = svc_b.connect("127.0.0.1", svc_a.listen_port());
  ASSERT_GE(cb, 0);
  drive(loop, [&] {
    return svc_b.ready(cb) && svc_a.connection_count() == 1 &&
           svc_a.ready(svc_a.connections().front());
  });
  const int ca = svc_a.connections().front();

  ASSERT_TRUE(svc_b.initiate_vote_encounter(cb, 100));
  ASSERT_TRUE(svc_a.initiate_vote_encounter(ca, 100));
  drive(loop, [&] {
    return svc_b.engine_counters(cb)->encounters_completed == 1 &&
           svc_a.engine_counters(ca)->encounters_completed == 1 &&
           svc_b.engine_counters(cb)->encounters_served == 1 &&
           svc_a.engine_counters(ca)->encounters_served == 1;
  });
  // Both boxes merged something; cross-channel interleaving is not
  // oracle-deterministic, so this test asserts liveness and accounting,
  // not digests (the smoke script uses a single-initiator schedule).
  EXPECT_GT(a.wire->ballot_box().size(), 0u);
  EXPECT_GT(b.wire->ballot_box().size(), 0u);
}

TEST(NetSocket, ReconnectRestartsSessionAndCounts) {
  Twin a = make_twin(1, 3001);
  Twin b = make_twin(2, 3002);
  b.cast(10, Opinion::kPositive, 50);

  EventLoop loop;
  NodeService svc_a(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  NodeService svc_b(loop, 2, b.keys, *b.wire, nullptr, nullptr);
  ASSERT_TRUE(svc_a.listen(0));
  const int cb = svc_b.connect("127.0.0.1", svc_a.listen_port());
  ASSERT_GE(cb, 0);
  drive(loop, [&] { return svc_b.ready(cb) && svc_a.connection_count() == 1; });

  svc_b.close(cb);
  EXPECT_FALSE(svc_b.open(cb));
  drive(loop, [&] { return svc_a.connection_count() == 0; });

  ASSERT_TRUE(svc_b.reconnect(cb));
  drive(loop, [&] { return svc_b.ready(cb) && svc_a.connection_count() == 1; });
  EXPECT_EQ(svc_b.stats().reconnects, 1u);

  // The fresh session works: one encounter end to end.
  ASSERT_TRUE(svc_b.initiate_vote_encounter(cb, 100));
  drive(loop,
        [&] { return svc_b.engine_counters(cb)->encounters_completed == 1; });
  EXPECT_GT(a.wire->ballot_box().size(), 0u);
}

// ---- hostile byte streams --------------------------------------------------

TEST(NetSocket, MalformedHeaderDropsConnection) {
  Twin a = make_twin(1, 4001);
  EventLoop loop;
  NodeService svc(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  ASSERT_TRUE(svc.listen(0));

  const int fd = raw_client(svc.listen_port());
  std::vector<std::uint8_t> junk(kHeaderSize, 0xAA);  // bad magic
  send_all(fd, junk);
  drive(loop, [&] { return svc.stats().malformed == 1; });
  EXPECT_EQ(svc.connection_count(), 0u);  // connection-fatal (§5)
  EXPECT_EQ(svc.stats().checksum_rejects, 0u);
  ::close(fd);
}

TEST(NetSocket, CrcMismatchDropsConnection) {
  Twin a = make_twin(1, 4002);
  EventLoop loop;
  NodeService svc(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  ASSERT_TRUE(svc.listen(0));

  util::Rng krng(4);
  const crypto::KeyPair peer_keys = crypto::generate_keypair(krng);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = encode_hello({7, peer_keys.pub});
  std::vector<std::uint8_t> wire;
  encode_frame(hello, wire);
  wire.back() ^= 0x40;  // flip a payload bit after the CRC was computed
  const int fd = raw_client(svc.listen_port());
  send_all(fd, wire);
  drive(loop, [&] { return svc.stats().checksum_rejects == 1; });
  EXPECT_EQ(svc.connection_count(), 0u);
  EXPECT_EQ(svc.stats().malformed, 0u);
  ::close(fd);
}

TEST(NetSocket, TruncatedStreamCounts) {
  Twin a = make_twin(1, 4003);
  EventLoop loop;
  NodeService svc(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  ASSERT_TRUE(svc.listen(0));

  util::Rng krng(5);
  const crypto::KeyPair peer_keys = crypto::generate_keypair(krng);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = encode_hello({7, peer_keys.pub});
  std::vector<std::uint8_t> wire;
  encode_frame(hello, wire);
  wire.resize(wire.size() - 4);  // cut mid-frame, then hang up
  const int fd = raw_client(svc.listen_port());
  send_all(fd, wire);
  ::close(fd);
  drive(loop, [&] { return svc.stats().truncated == 1; });
  EXPECT_EQ(svc.connection_count(), 0u);
}

TEST(NetSocket, ProtocolErrorBeforeHelloDropsConnection) {
  Twin a = make_twin(1, 4004);
  EventLoop loop;
  NodeService svc(loop, 1, a.keys, *a.wire, nullptr, nullptr);
  ASSERT_TRUE(svc.listen(0));

  Frame f;  // well-formed frame, but BYE before HELLO is out of state
  f.type = FrameType::kBye;
  std::vector<std::uint8_t> wire;
  encode_frame(f, wire);
  const int fd = raw_client(svc.listen_port());
  send_all(fd, wire);
  drive(loop, [&] { return svc.stats().protocol_errors == 1; });
  EXPECT_EQ(svc.connection_count(), 0u);
  ::close(fd);
}

}  // namespace
}  // namespace tribvote::net
