#include <gtest/gtest.h>

#include <set>

#include "vote/agent.hpp"
#include "vote/ballot_box.hpp"
#include "vote/ranking.hpp"
#include "vote/vote_list.hpp"
#include "vote/voxpopuli.hpp"

namespace tribvote::vote {
namespace {

TEST(LocalVoteList, OneVotePerModerator) {
  LocalVoteList list;
  list.cast(1, Opinion::kPositive, 10);
  list.cast(2, Opinion::kNegative, 20);
  list.cast(1, Opinion::kNegative, 30);  // revision, not a new entry
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.opinion_of(1), Opinion::kNegative);
  EXPECT_EQ(list.opinion_of(2), Opinion::kNegative);
  EXPECT_EQ(list.opinion_of(99), Opinion::kNone);
}

TEST(LocalVoteList, SelectReturnsAllWhenSmall) {
  LocalVoteList list;
  util::Rng rng(1);
  list.cast(1, Opinion::kPositive, 10);
  list.cast(2, Opinion::kPositive, 20);
  EXPECT_EQ(list.select_for_message(50, rng).size(), 2u);
  EXPECT_TRUE(list.select_for_message(0, rng).empty());
}

TEST(LocalVoteList, SelectCapsAndIncludesMostRecent) {
  LocalVoteList list;
  util::Rng rng(2);
  for (ModeratorId m = 0; m < 100; ++m) {
    list.cast(m, Opinion::kPositive, static_cast<Time>(m));
  }
  const auto msg = list.select_for_message(50, rng);
  ASSERT_EQ(msg.size(), 50u);
  std::set<ModeratorId> mods;
  for (const auto& v : msg) mods.insert(v.moderator);
  EXPECT_EQ(mods.size(), 50u);  // no duplicates
  // Recency half: the 25 newest (75..99) must all be present.
  for (ModeratorId m = 75; m < 100; ++m) {
    EXPECT_TRUE(mods.contains(m)) << "missing recent vote " << m;
  }
}

TEST(LocalVoteList, SelectRandomHalfVaries) {
  LocalVoteList list;
  util::Rng rng(3);
  for (ModeratorId m = 0; m < 100; ++m) {
    list.cast(m, Opinion::kPositive, static_cast<Time>(m));
  }
  std::set<ModeratorId> seen;
  for (int trial = 0; trial < 10; ++trial) {
    for (const auto& v : list.select_for_message(10, rng)) {
      seen.insert(v.moderator);
    }
  }
  EXPECT_GT(seen.size(), 20u);  // random half actually samples widely
}

TEST(BallotBox, MergeCountsUniqueVoters) {
  BallotBox box(100);
  box.merge(1, {{5, Opinion::kPositive, 1}}, 10);
  box.merge(2, {{5, Opinion::kPositive, 2}}, 20);
  box.merge(1, {{6, Opinion::kNegative, 3}}, 30);
  EXPECT_EQ(box.unique_voters(), 2u);
  EXPECT_EQ(box.size(), 3u);
}

TEST(BallotBox, OneVotePerVoterModeratorPair) {
  BallotBox box(100);
  box.merge(1, {{5, Opinion::kPositive, 1}}, 10);
  box.merge(1, {{5, Opinion::kNegative, 2}}, 20);  // revision
  EXPECT_EQ(box.size(), 1u);
  const auto tally = box.tally();
  EXPECT_EQ(tally.at(5).positive, 0u);
  EXPECT_EQ(tally.at(5).negative, 1u);
}

TEST(BallotBox, DropsMalformedNoneVotes) {
  BallotBox box(10);
  box.merge(1, {{5, Opinion::kNone, 1}}, 10);
  EXPECT_EQ(box.size(), 0u);
}

TEST(BallotBox, CapacityEvictsOldest) {
  BallotBox box(3);
  box.merge(1, {{10, Opinion::kPositive, 1}}, 10);
  box.merge(2, {{10, Opinion::kPositive, 2}}, 20);
  box.merge(3, {{10, Opinion::kPositive, 3}}, 30);
  box.merge(4, {{10, Opinion::kPositive, 4}}, 40);  // evicts voter 1's entry
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.unique_voters(), 3u);
  const auto tally = box.tally();
  EXPECT_EQ(tally.at(10).positive, 3u);
}

TEST(BallotBox, EvictionUpdatesUniqueVoters) {
  BallotBox box(2);
  box.merge(1, {{10, Opinion::kPositive, 1}, {11, Opinion::kPositive, 1}},
            10);
  EXPECT_EQ(box.unique_voters(), 1u);
  // Two new votes from voter 2 evict both of voter 1's.
  box.merge(2, {{10, Opinion::kPositive, 2}, {11, Opinion::kPositive, 2}},
            20);
  EXPECT_EQ(box.unique_voters(), 1u);
  EXPECT_EQ(box.size(), 2u);
}

TEST(BallotBox, TallyAggregatesAcrossVoters) {
  BallotBox box(100);
  box.merge(1, {{7, Opinion::kPositive, 1}}, 1);
  box.merge(2, {{7, Opinion::kPositive, 1}}, 2);
  box.merge(3, {{7, Opinion::kNegative, 1}}, 3);
  box.merge(4, {{8, Opinion::kNegative, 1}}, 4);
  const auto tally = box.tally();
  EXPECT_EQ(tally.at(7).positive, 2u);
  EXPECT_EQ(tally.at(7).negative, 1u);
  EXPECT_EQ(tally.at(7).total(), 3u);
  EXPECT_EQ(tally.at(8).negative, 1u);
}

TEST(BallotBox, DispersionZeroOnConsensus) {
  BallotBox box(100);
  for (PeerId voter = 1; voter <= 4; ++voter) {
    box.merge(voter, {{7, Opinion::kPositive, 1}}, 1);
  }
  EXPECT_DOUBLE_EQ(box.dispersion(), 0.0);
}

TEST(BallotBox, DispersionOneOnMaximalConflict) {
  BallotBox box(100);
  box.merge(1, {{7, Opinion::kPositive, 1}}, 1);
  box.merge(2, {{7, Opinion::kNegative, 1}}, 1);
  EXPECT_DOUBLE_EQ(box.dispersion(), 1.0);
}

TEST(BallotBox, DispersionIgnoresSingleVoteModerators) {
  BallotBox box(100);
  box.merge(1, {{7, Opinion::kPositive, 1}}, 1);
  EXPECT_DOUBLE_EQ(box.dispersion(), 0.0);
}

TEST(BallotBox, PurgeVotersDropsMatchingEntries) {
  BallotBox box(100);
  box.merge(1, {{5, Opinion::kPositive, 1}, {6, Opinion::kPositive, 1}}, 1);
  box.merge(2, {{5, Opinion::kNegative, 1}}, 2);
  box.merge(3, {{5, Opinion::kPositive, 1}}, 3);
  const std::size_t removed =
      box.purge_voters([](PeerId voter) { return voter != 1; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.unique_voters(), 2u);
  const auto tally = box.tally();
  EXPECT_EQ(tally.at(5).positive, 1u);  // only voter 3's remains
  EXPECT_FALSE(tally.contains(6));
}

TEST(BallotBox, PurgeVotersKeepAllIsNoop) {
  BallotBox box(100);
  box.merge(1, {{5, Opinion::kPositive, 1}}, 1);
  EXPECT_EQ(box.purge_voters([](PeerId) { return true; }), 0u);
  EXPECT_EQ(box.size(), 1u);
}

TEST(BallotBox, MaxDispersionPicksWorstModerator) {
  BallotBox box(100);
  // Moderator 7: unanimous (3 votes). Moderator 8: 2 vs 1 split.
  for (PeerId v = 1; v <= 3; ++v) {
    box.merge(v, {{7, Opinion::kPositive, 1}}, 1);
  }
  box.merge(1, {{8, Opinion::kPositive, 1}}, 1);
  box.merge(2, {{8, Opinion::kPositive, 1}}, 1);
  box.merge(3, {{8, Opinion::kNegative, 1}}, 1);
  EXPECT_NEAR(box.max_dispersion(3), 1.0 - 1.0 / 3.0, 1e-12);
  // Raising the vote floor above the sample sizes silences the signal.
  EXPECT_DOUBLE_EQ(box.max_dispersion(4), 0.0);
}

TEST(Ranking, SumMethodOrdersByNetVotes) {
  std::map<ModeratorId, Tally> tally;
  tally[1] = Tally{5, 0};   // +5
  tally[2] = Tally{0, 0};   //  0
  tally[3] = Tally{1, 4};   // -3
  EXPECT_EQ(rank(tally, RankMethod::kSum), (RankedList{1, 2, 3}));
}

TEST(Ranking, ProportionalMethodUsesSmoothedRatio) {
  std::map<ModeratorId, Tally> tally;
  tally[1] = Tally{1, 0};    // 2/3
  tally[2] = Tally{10, 10};  // 11/22 = 0.5
  tally[3] = Tally{0, 1};    // 1/3
  EXPECT_EQ(rank(tally, RankMethod::kProportional), (RankedList{1, 2, 3}));
  EXPECT_NEAR(score(tally[1], RankMethod::kProportional), 2.0 / 3.0, 1e-12);
}

TEST(Ranking, TieBreaksByLowerId) {
  std::map<ModeratorId, Tally> tally;
  tally[9] = Tally{2, 0};
  tally[4] = Tally{2, 0};
  EXPECT_EQ(rank(tally, RankMethod::kSum), (RankedList{4, 9}));
}

TEST(Ranking, TopKTruncates) {
  std::map<ModeratorId, Tally> tally;
  for (ModeratorId m = 0; m < 10; ++m) tally[m] = Tally{m, 0};
  const auto top3 = rank_top_k(tally, RankMethod::kSum, 3);
  EXPECT_EQ(top3, (RankedList{9, 8, 7}));
}

TEST(VoxPopuli, EmptyCacheNoRanking) {
  VoxPopuliCache cache(10, 3);
  EXPECT_TRUE(cache.empty());
  EXPECT_TRUE(cache.merged_ranking().empty());
}

TEST(VoxPopuli, SingleListPassesThrough) {
  VoxPopuliCache cache(10, 3);
  cache.add_list({7, 2, 9});
  EXPECT_EQ(cache.merged_ranking(), (RankedList{7, 2, 9}));
}

TEST(VoxPopuli, MissingModeratorChargedKPlusOne) {
  VoxPopuliCache cache(10, 3);
  cache.add_list({1, 2, 3});
  cache.add_list({1, 2, 3});
  cache.add_list({2, 1});  // 3 missing: rank 4 in this list
  // avg ranks: 1 -> (1+1+2)/3, 2 -> (2+2+1)/3, 3 -> (3+3+4)/3.
  EXPECT_EQ(cache.merged_ranking(), (RankedList{1, 2, 3}));
}

TEST(VoxPopuli, EvictsOldestBeyondVmax) {
  VoxPopuliCache cache(2, 3);
  cache.add_list({1});
  cache.add_list({2});
  cache.add_list({3});  // evicts {1}
  EXPECT_EQ(cache.list_count(), 2u);
  const auto merged = cache.merged_ranking();
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_TRUE(std::find(merged.begin(), merged.end(), 1u) == merged.end());
}

TEST(VoxPopuli, TruncatesOverlongLists) {
  VoxPopuliCache cache(5, 2);
  cache.add_list({1, 2, 3, 4});
  const auto merged = cache.merged_ranking();
  EXPECT_EQ(merged.size(), 2u);
}

TEST(VoxPopuli, MajorityBeatsSingleLiar) {
  VoxPopuliCache cache(10, 3);
  cache.add_list({1, 2, 3});
  cache.add_list({1, 2, 3});
  cache.add_list({9, 1, 2});  // liar promotes 9
  EXPECT_EQ(cache.merged_ranking().front(), 1u);
}

// ---- VoteAgent ---------------------------------------------------------------

class VoteAgentTest : public ::testing::Test {
 protected:
  struct Peer {
    Peer(PeerId id, bool experienced_result = true,
         VoteConfig config = VoteConfig{})
        : keys([id] {
            util::Rng r(500 + id);
            return crypto::generate_keypair(r);
          }()),
          agent(id, keys, config,
                [experienced_result](PeerId) { return experienced_result; },
                util::Rng(600 + id)) {}
    crypto::KeyPair keys;
    VoteAgent agent;
  };
};

TEST_F(VoteAgentTest, OutgoingVotesAreSigned) {
  Peer alice(0);
  alice.agent.cast_vote(3, Opinion::kPositive, 10);
  const VoteListMessage msg = alice.agent.outgoing_votes(20);
  EXPECT_EQ(msg.voter, 0u);
  EXPECT_EQ(msg.votes.size(), 1u);
  EXPECT_TRUE(crypto::verify(msg.key, msg.digest(), msg.signature));
}

TEST_F(VoteAgentTest, ReceiveAcceptsExperiencedVoter) {
  Peer alice(0), bob(1);
  bob.agent.cast_vote(3, Opinion::kPositive, 5);
  EXPECT_EQ(alice.agent.receive_votes(bob.agent.outgoing_votes(10), 10),
            ReceiveResult::kAccepted);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 1u);
}

TEST_F(VoteAgentTest, ReceiveRejectsInexperiencedVoter) {
  Peer alice(0, /*experienced_result=*/false);
  Peer bob(1);
  bob.agent.cast_vote(3, Opinion::kPositive, 5);
  EXPECT_EQ(alice.agent.receive_votes(bob.agent.outgoing_votes(10), 10),
            ReceiveResult::kInexperienced);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 0u);
}

TEST_F(VoteAgentTest, ReceiveRejectsForgedMessage) {
  Peer alice(0), bob(1), mallory(2);
  bob.agent.cast_vote(3, Opinion::kPositive, 5);
  VoteListMessage msg = bob.agent.outgoing_votes(10);
  // Mallory alters the votes.
  msg.votes[0].opinion = Opinion::kNegative;
  EXPECT_EQ(alice.agent.receive_votes(msg, 10),
            ReceiveResult::kBadSignature);
  // Mallory re-signs with her own key but claims bob's id.
  VoteListMessage forged = msg;
  forged.key = mallory.keys.pub;
  util::Rng r(1);
  forged.signature = crypto::sign(mallory.keys, forged.digest(), r);
  // Signature verifies against the embedded key, but the id binding is
  // checked by the caller against the Tribler PKI; inside the simulator the
  // embedded key IS bob's registered key, so a mismatched key means the
  // message digest check fails for bob's genuine key. We model the minimum:
  // the message must verify against its own key, and identities cannot be
  // spoofed because keys are registered per PeerId in core::Node.
  EXPECT_TRUE(crypto::verify(forged.key, forged.digest(), forged.signature));
}

TEST_F(VoteAgentTest, TruncatedOrBitDamagedMessageNeverPoisonsTheBox) {
  // In-flight damage as the fault plane deals it: truncation (tail of the
  // vote list lost) or a flipped signature bit. One Schnorr signature
  // covers the whole list, so either way verification fails wholesale and
  // the ballot box is untouched — a damaged message can never smuggle a
  // partial or altered vote set past the signature.
  Peer alice(0), bob(1);
  bob.agent.cast_vote(3, Opinion::kPositive, 5);
  bob.agent.cast_vote(4, Opinion::kNegative, 6);
  VoteListMessage truncated = bob.agent.outgoing_votes(10);
  ASSERT_EQ(truncated.votes.size(), 2u);
  truncated.votes.resize(1);
  EXPECT_EQ(alice.agent.receive_votes(truncated, 10),
            ReceiveResult::kBadSignature);
  VoteListMessage damaged = bob.agent.outgoing_votes(10);
  damaged.signature.s ^= 1ull << 17;
  EXPECT_EQ(alice.agent.receive_votes(damaged, 10),
            ReceiveResult::kBadSignature);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 0u);
  // Rejection is stateless: the pristine message still lands afterwards.
  EXPECT_EQ(alice.agent.receive_votes(bob.agent.outgoing_votes(10), 10),
            ReceiveResult::kAccepted);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 1u);
}

TEST_F(VoteAgentTest, ReceiveIgnoresSelfAndEmpty) {
  Peer alice(0);
  EXPECT_EQ(alice.agent.receive_votes(alice.agent.outgoing_votes(5), 5),
            ReceiveResult::kSelfMessage);
  Peer bob(1);
  EXPECT_EQ(alice.agent.receive_votes(bob.agent.outgoing_votes(5), 5),
            ReceiveResult::kEmpty);
}

TEST_F(VoteAgentTest, BootstrappingThreshold) {
  VoteConfig config;
  config.b_min = 2;
  Peer alice(0, true, config);
  EXPECT_TRUE(alice.agent.bootstrapping());
  for (PeerId voter = 1; voter <= 2; ++voter) {
    Peer other(voter);
    other.agent.cast_vote(3, Opinion::kPositive, 1);
    (void)alice.agent.receive_votes(other.agent.outgoing_votes(5), 5);
  }
  EXPECT_FALSE(alice.agent.bootstrapping());
}

TEST_F(VoteAgentTest, AnswerTopkNullWhileBootstrapping) {
  Peer alice(0);
  EXPECT_TRUE(alice.agent.answer_topk().empty());
}

TEST_F(VoteAgentTest, AnswerTopkAfterBmin) {
  VoteConfig config;
  config.b_min = 1;
  Peer alice(0, true, config);
  Peer bob(1);
  bob.agent.cast_vote(3, Opinion::kPositive, 1);
  (void)alice.agent.receive_votes(bob.agent.outgoing_votes(5), 5);
  const RankedList topk = alice.agent.answer_topk();
  ASSERT_FALSE(topk.empty());
  EXPECT_EQ(topk.front(), 3u);
}

TEST_F(VoteAgentTest, CurrentRankingUsesVoxWhileBootstrapping) {
  Peer alice(0);
  EXPECT_TRUE(alice.agent.current_ranking().empty());
  alice.agent.receive_topk({4, 5});
  EXPECT_EQ(alice.agent.current_ranking(), (RankedList{4, 5}));
  EXPECT_EQ(alice.agent.top_moderator(), std::optional<ModeratorId>{4});
}

TEST_F(VoteAgentTest, KnownModeratorsAppearWithZeroScore) {
  VoteConfig config;
  config.b_min = 1;
  Peer alice(0, true, config);
  alice.agent.known_moderators = [] {
    return std::vector<ModeratorId>{3, 8};
  };
  Peer bob(1);
  bob.agent.cast_vote(3, Opinion::kNegative, 1);
  (void)alice.agent.receive_votes(bob.agent.outgoing_votes(5), 5);
  // 8 (no votes, score 0) must outrank 3 (net -1).
  EXPECT_EQ(alice.agent.current_ranking(), (RankedList{8, 3}));
}

TEST_F(VoteAgentTest, ObservedDispersionSeesRejectedVotes) {
  // Alice rejects everyone (E = false) yet still observes the conflict.
  Peer alice(0, /*experienced_result=*/false);
  Peer bob(1), carol(2), dave(3);
  bob.agent.cast_vote(9, Opinion::kPositive, 1);
  carol.agent.cast_vote(9, Opinion::kPositive, 1);
  dave.agent.cast_vote(9, Opinion::kNegative, 1);
  for (auto* peer : {&bob, &carol, &dave}) {
    EXPECT_EQ(alice.agent.receive_votes(peer->agent.outgoing_votes(5), 5),
              ReceiveResult::kInexperienced);
  }
  EXPECT_EQ(alice.agent.ballot_box().size(), 0u);
  EXPECT_NEAR(alice.agent.observed_dispersion(), 1.0 - 1.0 / 3.0, 1e-12);
}

TEST_F(VoteAgentTest, RefilterBallotDropsNowInexperienced) {
  // Experience flips to false after the votes were accepted.
  bool experienced = true;
  const crypto::KeyPair keys = [] {
    util::Rng r(900);
    return crypto::generate_keypair(r);
  }();
  VoteAgent agent(0, keys, VoteConfig{},
                  [&experienced](PeerId) { return experienced; },
                  util::Rng(901));
  Peer bob(1);
  bob.agent.cast_vote(9, Opinion::kPositive, 1);
  ASSERT_EQ(agent.receive_votes(bob.agent.outgoing_votes(5), 5),
            ReceiveResult::kAccepted);
  ASSERT_EQ(agent.ballot_box().size(), 1u);
  experienced = false;
  EXPECT_EQ(agent.refilter_ballot(), 1u);
  EXPECT_EQ(agent.ballot_box().size(), 0u);
}

TEST_F(VoteAgentTest, PreloadBypassesChecks) {
  Peer alice(0, /*experienced_result=*/false);
  alice.agent.preload_sample(7, {{3, Opinion::kPositive, 1}}, 1);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 1u);
}

TEST_F(VoteAgentTest, VoteExchangeFullFlow) {
  VoteConfig config;
  config.b_min = 1;
  Peer alice(0, true, config);
  Peer bob(1, true, config);
  bob.agent.cast_vote(3, Opinion::kPositive, 1);
  Peer carol(2, true, config);

  // Bob gets a vote from carol so he is past B_min and can answer VP.
  carol.agent.cast_vote(3, Opinion::kPositive, 1);
  vote_exchange(bob.agent, carol.agent, 5);
  ASSERT_FALSE(bob.agent.bootstrapping());

  // Alice exchanges with bob: she accepts bob's vote list, which lifts her
  // past B_min *before* the VP leg — Fig. 3a checks the threshold after the
  // merge, so no VP request is issued.
  vote_exchange(alice.agent, bob.agent, 10);
  EXPECT_EQ(alice.agent.ballot_box().unique_voters(), 1u);
  EXPECT_EQ(alice.agent.vox_cache().list_count(), 0u);

  // Dave considers nobody experienced: the ballot leg rejects bob's votes,
  // he stays bootstrapping, and the VP leg fires and fills his cache.
  Peer dave(3, /*experienced_result=*/false, config);
  vote_exchange(dave.agent, bob.agent, 20);
  EXPECT_EQ(dave.agent.ballot_box().unique_voters(), 0u);
  EXPECT_EQ(dave.agent.vox_cache().list_count(), 1u);
}

}  // namespace
}  // namespace tribvote::vote
