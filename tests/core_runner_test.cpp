#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "metrics/degradation.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

namespace tribvote::core {
namespace {

/// Small, fast trace for runner tests: 20 peers, 1 day, 3 swarms.
trace::Trace small_trace(std::uint64_t seed = 5) {
  trace::GeneratorParams params;
  params.n_peers = 20;
  params.n_swarms = 3;
  params.duration = kDay;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  return trace::generate_trace(params, seed);
}

TEST(Node, RolesAndWiring) {
  ScenarioConfig config;
  Node honest(0, NodeRole::kHonest, config, util::Rng(1));
  EXPECT_EQ(honest.role(), NodeRole::kHonest);
  EXPECT_DOUBLE_EQ(honest.threshold_mb(), config.experience_threshold_mb);
  // Nobody has contributed: nobody is experienced.
  EXPECT_FALSE(honest.experienced(1));
}

TEST(Node, UserVoteGatesModeration) {
  ScenarioConfig config;
  Node alice(0, NodeRole::kHonest, config, util::Rng(1));
  Node mallory(5, NodeRole::kHonest, config, util::Rng(2));
  mallory.mod().publish(0xbad, "spam", 1);
  moderation::exchange(mallory.mod(), alice.mod(), 2);
  ASSERT_EQ(alice.mod().db().count_from(5), 1u);
  // Alice disapproves: items purged and blocked.
  alice.user_vote(5, Opinion::kNegative, 3);
  EXPECT_EQ(alice.mod().db().count_from(5), 0u);
  moderation::exchange(mallory.mod(), alice.mod(), 4);
  EXPECT_EQ(alice.mod().db().count_from(5), 0u);
  // And her vote list records the disapproval.
  EXPECT_EQ(alice.vote().vote_list().opinion_of(5), Opinion::kNegative);
}

TEST(Node, AdaptiveThresholdReactsToDispersion) {
  ScenarioConfig config;
  config.adaptive_threshold = true;
  config.adaptive.t_min = 0.0;
  Node alice(0, NodeRole::kHonest, config, util::Rng(1));
  EXPECT_DOUBLE_EQ(alice.threshold_mb(), 0.0);
  // Calm input: threshold stays at the floor.
  alice.update_adaptive_threshold();
  EXPECT_DOUBLE_EQ(alice.threshold_mb(), 0.0);
  // Conflicting *incoming* votes on one moderator (2 vs 1) raise it —
  // the signal is observed dispersion, counted even for rejected votes.
  Node bob(1, NodeRole::kHonest, config, util::Rng(2));
  Node carol(2, NodeRole::kHonest, config, util::Rng(3));
  Node dave(3, NodeRole::kHonest, config, util::Rng(4));
  bob.vote().cast_vote(7, Opinion::kPositive, 1);
  carol.vote().cast_vote(7, Opinion::kPositive, 1);
  dave.vote().cast_vote(7, Opinion::kNegative, 1);
  for (Node* peer : {&bob, &carol, &dave}) {
    (void)alice.vote().receive_votes(peer->vote().outgoing_votes(2), 2);
  }
  alice.update_adaptive_threshold();
  EXPECT_GT(alice.threshold_mb(), 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner r1(tr, config, 42);
  ScenarioRunner r2(tr, config, 42);
  r1.run_until(tr.duration);
  r2.run_until(tr.duration);
  EXPECT_EQ(r1.stats().downloads_completed, r2.stats().downloads_completed);
  EXPECT_EQ(r1.stats().vote_exchanges, r2.stats().vote_exchanges);
  EXPECT_EQ(r1.stats().votes_accepted, r2.stats().votes_accepted);
  EXPECT_EQ(r1.ledger().total_uploaded_mb(0),
            r2.ledger().total_uploaded_mb(0));
}

TEST(Runner, DifferentSeedsDiverge) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner r1(tr, config, 1);
  ScenarioRunner r2(tr, config, 2);
  r1.run_until(tr.duration);
  r2.run_until(tr.duration);
  double up1 = 0, up2 = 0;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    up1 += r1.ledger().total_uploaded_mb(p);
    up2 += r2.ledger().total_uploaded_mb(p);
  }
  EXPECT_NE(up1, up2);
}

TEST(Runner, SessionsDriveOnlineState) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  runner.run_until(12 * kHour);
  std::size_t online_per_runner = 0, online_per_trace = 0;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (runner.is_online(p)) ++online_per_runner;
  }
  for (const auto& s : tr.sessions) {
    if (s.start <= 12 * kHour && 12 * kHour < s.end) ++online_per_trace;
  }
  EXPECT_EQ(online_per_runner, online_per_trace);
}

TEST(Runner, DownloadsActuallyComplete) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  runner.run_until(tr.duration);
  EXPECT_GT(runner.stats().downloads_completed, 0u);
  // Transfers landed in the ledger.
  double total = 0;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    total += runner.ledger().total_uploaded_mb(p);
  }
  EXPECT_GT(total, 100.0);
}

TEST(Runner, ScriptedModerationAndVotes) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  const auto firsts = trace::earliest_arrivals(tr, 1);
  const ModeratorId m1 = firsts[0];
  runner.publish_moderation(m1, kMinute, "metadata");
  // Every other founder votes positive on receipt.
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != m1) runner.script_vote_on_receipt(p, m1, Opinion::kPositive);
  }
  runner.run_until(tr.duration);
  std::size_t voted = 0;
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != m1 &&
        runner.node(p).vote().vote_list().opinion_of(m1) ==
            Opinion::kPositive) {
      ++voted;
    }
  }
  EXPECT_GT(voted, tr.peers.size() / 2);
}

TEST(Runner, AttackInjectsColluders) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  config.attack.crowd_size = 5;
  config.attack.start = kHour;
  config.attack.duty = 1.0;  // keep colluders online for the assertions
  ScenarioRunner runner(tr, config, 7);
  EXPECT_EQ(runner.population_size(), tr.peers.size() + 5);
  EXPECT_EQ(runner.colluders().size(), 5u);
  EXPECT_EQ(runner.spam_moderator(), tr.peers.size());
  runner.run_until(30 * kMinute);
  EXPECT_FALSE(runner.is_online(runner.spam_moderator()));
  runner.run_until(2 * kHour);
  for (const PeerId c : runner.colluders()) {
    EXPECT_TRUE(runner.is_online(c));
    EXPECT_EQ(runner.node(c).role(), NodeRole::kColluder);
  }
  EXPECT_TRUE(runner.has_arrived(runner.spam_moderator(), 2 * kHour));
  EXPECT_FALSE(runner.has_arrived(runner.spam_moderator(), kMinute));
}

TEST(Runner, PreseedTransferCreatesExperience) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  runner.preseed_transfer(3, 4, 50.0);
  // Once node 4 syncs its direct statistics (normally on its next barter
  // round), it considers 3 experienced.
  runner.node(4).barter().sync_direct(runner.ledger(), 0);
  EXPECT_GE(runner.node(4).barter().contribution_of(3), 50.0 - 1e-6);
  EXPECT_TRUE(runner.node(4).experienced(3));
}

TEST(Runner, PreloadBallotSkipsBootstrap) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  for (PeerId voter = 1; voter <= config.vote.b_min; ++voter) {
    runner.preload_ballot(0, voter, /*moderator=*/9, Opinion::kPositive);
  }
  EXPECT_FALSE(runner.node(0).vote().bootstrapping());
  EXPECT_EQ(runner.ranking_of(0).front(), 9u);
}

TEST(Runner, SamplerFiresOnGrid) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 7);
  std::vector<Time> fired;
  runner.sample_every(6 * kHour, [&](Time t) { fired.push_back(t); });
  runner.run_until(tr.duration);
  ASSERT_GE(fired.size(), 4u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 6 * kHour);
  EXPECT_EQ(fired[2], 12 * kHour);
}

TEST(Runner, NewscastPssVariantRuns) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  config.pss = PssKind::kNewscast;
  ScenarioRunner runner(tr, config, 7);
  runner.run_until(6 * kHour);
  EXPECT_GT(runner.stats().vote_exchanges, 0u);
}

/// Run a fully-scripted scenario at the given shard count and return the
/// sampled metrics as a CSV string — counters, a bit-exact float metric
/// (CEV printed with %.17g round-trips doubles exactly) and a ranking, so
/// any divergence in protocol state shows up as a byte difference.
std::string metrics_csv(const trace::Trace& tr, ScenarioConfig config,
                        std::size_t shards) {
  config.shards = shards;
  ScenarioRunner runner(tr, config, /*seed=*/42);
  const auto firsts = trace::earliest_arrivals(tr, 2);
  runner.publish_moderation(firsts[0], kMinute, "good metadata");
  runner.publish_moderation(firsts[1], 2 * kMinute, "spam metadata");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p == firsts[0] || p == firsts[1]) continue;
    runner.script_vote_on_receipt(
        p, p % 2 == 0 ? firsts[0] : firsts[1],
        p % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }
  std::string csv = "t,online,accepted,rejected,vp,cev,top\n";
  runner.sample_every(2 * kHour, [&](Time t) {
    const double cev =
        runner.collective_experience(config.experience_threshold_mb);
    const vote::RankedList rank = runner.ranking_of(3);
    char line[160];
    std::snprintf(
        line, sizeof line, "%lld,%zu,%llu,%llu,%llu,%.17g,%u\n",
        static_cast<long long>(t), runner.online_count(),
        static_cast<unsigned long long>(runner.stats().votes_accepted),
        static_cast<unsigned long long>(
            runner.stats().votes_rejected_inexperienced),
        static_cast<unsigned long long>(runner.stats().vp_requests_answered),
        cev, rank.empty() ? kInvalidModerator : rank.front());
    csv += line;
  });
  runner.run_until(tr.duration);
  char tail[160];
  std::snprintf(tail, sizeof tail, "final,%llu,%llu,%llu,%.17g\n",
                static_cast<unsigned long long>(
                    runner.stats().downloads_completed),
                static_cast<unsigned long long>(runner.stats().vote_exchanges),
                static_cast<unsigned long long>(
                    runner.stats().moderation_exchanges),
                runner.ledger().total_uploaded_mb(0));
  csv += tail;
  // Degradation counters close the CSV: in a fault-free run they are all
  // zero, in a faulted run any shard-count divergence shows up here even
  // when the protocol metrics happen to agree.
  csv += "faults";
  for (const auto& [name, value] :
       metrics::degradation_columns(runner.fault_stats())) {
    csv += ',' + std::to_string(value);
  }
  csv += '\n';
  return csv;
}

TEST(Runner, ShardCountInvariance) {
  // The acceptance bar for the sharded kernel: byte-identical metrics CSV
  // for shards ∈ {1, 2, 4} on a small trace.
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 2));
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
}

TEST(Runner, ShardCountInvarianceUnderAttackAndAdaptive) {
  // Harder variant: colluder crowd (attack agents + churn), adaptive
  // threshold (exercises the sharded for_each_node path) and the Newscast
  // PSS (global gossip state drawn during serial pairing only).
  const trace::Trace tr = small_trace(/*seed=*/11);
  ScenarioConfig config;
  config.attack.crowd_size = 6;
  config.attack.start = 2 * kHour;
  config.adaptive_threshold = true;
  config.pss = PssKind::kNewscast;
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 3));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(Runner, ShardStressCrossShardMailboxes) {
  // TSan-friendly stress: a larger population on real worker threads, with
  // shards chosen so most encounters cross shard boundaries. Asserts the
  // mailboxed path actually ran and that results match the serial run.
  trace::GeneratorParams params;
  params.n_peers = 48;
  params.n_swarms = 4;
  params.duration = kDay;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  const trace::Trace tr = trace::generate_trace(params, 13);

  ScenarioConfig config;
  const std::string serial = metrics_csv(tr, config, 1);

  config.shards = 4;
  ScenarioRunner sharded(tr, config, /*seed=*/42);
  const auto firsts = trace::earliest_arrivals(tr, 2);
  sharded.publish_moderation(firsts[0], kMinute, "good metadata");
  sharded.publish_moderation(firsts[1], 2 * kMinute, "spam metadata");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p == firsts[0] || p == firsts[1]) continue;
    sharded.script_vote_on_receipt(
        p, p % 2 == 0 ? firsts[0] : firsts[1],
        p % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }
  sharded.run_until(tr.duration);
  EXPECT_EQ(sharded.shard_count(), 4u);
  EXPECT_GT(sharded.kernel_stats().mailed, 0u);
  EXPECT_GT(sharded.kernel_stats().levels,
            sharded.kernel_stats().rounds);  // multi-level rounds happened

  // And the full-fidelity comparison via the CSV harness.
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
}

/// Transport faults for the robustness tests: lossy enough that every
/// fault class fires on a 1-day / 20-peer trace.
ScenarioConfig faulty_config() {
  ScenarioConfig config;
  config.faults.loss = 0.25;
  config.faults.delay_rate = 0.15;
  config.faults.max_delay = 90;
  config.faults.crash_rate = 0.02;
  config.faults.corrupt_rate = 0.1;
  return config;
}

TEST(Runner, FaultedRunsAreDeterministic) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config = faulty_config();
  EXPECT_EQ(metrics_csv(tr, config, 1), metrics_csv(tr, config, 1));
}

TEST(Runner, FaultedShardCountInvariance) {
  // Acceptance bar for the fault plane: with faults ON, output (protocol
  // metrics AND degradation counters) is byte-identical for shards
  // ∈ {1, 4, 8} — every fault verdict is drawn serially at pairing time.
  const trace::Trace tr = small_trace();
  const ScenarioConfig config = faulty_config();
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(Runner, GossipCacheTransparency) {
  // Acceptance bar for the vote-history cache + delta gossip: the cache is
  // semantically transparent. Runs with the cache on (default) and off are
  // byte-identical, at shards {1, 4, 8}, with faults off and on.
  const trace::Trace tr = small_trace();
  ScenarioConfig on;
  ScenarioConfig off;
  off.vote.gossip_cache = false;
  const std::string baseline = metrics_csv(tr, on, 1);
  for (const std::size_t shards : {1u, 4u, 8u}) {
    EXPECT_EQ(baseline, metrics_csv(tr, on, shards)) << shards;
    EXPECT_EQ(baseline, metrics_csv(tr, off, shards)) << shards;
  }
  ScenarioConfig fault_on = faulty_config();
  ScenarioConfig fault_off = faulty_config();
  fault_off.vote.gossip_cache = false;
  const std::string faulted = metrics_csv(tr, fault_on, 1);
  for (const std::size_t shards : {1u, 4u, 8u}) {
    EXPECT_EQ(faulted, metrics_csv(tr, fault_on, shards)) << shards;
    EXPECT_EQ(faulted, metrics_csv(tr, fault_off, shards)) << shards;
  }
}

TEST(Runner, FaultedRunDegradesGracefully) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config = faulty_config();
  ScenarioRunner runner(tr, config, 7);
  const auto firsts = trace::earliest_arrivals(tr, 1);
  runner.publish_moderation(firsts[0], kMinute, "metadata");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != firsts[0]) {
      runner.script_vote_on_receipt(p, firsts[0], Opinion::kPositive);
    }
  }
  runner.run_until(tr.duration);
  // The protocols kept making progress under 25 % loss...
  EXPECT_GT(runner.stats().vote_exchanges, 0u);
  EXPECT_GT(runner.stats().votes_accepted, 0u);
  EXPECT_GT(runner.stats().downloads_completed, 0u);
  // ...and the plane accounted for the damage it dealt.
  const sim::FaultCounters total = runner.fault_stats().total();
  EXPECT_GT(total.encounters_hit, 0u);
  EXPECT_GT(total.dropped_requests, 0u);
  EXPECT_GT(total.dropped_replies, 0u);
  EXPECT_GT(total.delayed, 0u);
  EXPECT_GT(total.corrupted, 0u);
  EXPECT_GT(total.one_sided, 0u);
}

TEST(Runner, CrashRoundsLeaveNoDanglingMailboxes) {
  // Satellite: peer_offline mid-round (fault-plane crashes) must leave the
  // shard kernel's cross-shard mailboxes fully drained after every round.
  const trace::Trace tr = small_trace();
  ScenarioConfig config = faulty_config();
  config.faults.crash_rate = 0.1;  // crash hard and often
  config.shards = 4;
  ScenarioRunner runner(tr, config, 11);
  for (Time t = kHour; t <= tr.duration; t += kHour) {
    runner.run_until(t);
    EXPECT_EQ(runner.pending_mail(), 0u) << "at t=" << t;
  }
  EXPECT_GT(runner.fault_stats().total().crashes, 0u);
  EXPECT_GT(runner.fault_stats().total().unreachable, 0u);
}

TEST(Runner, VoxPopuliRetriesRecoverLostRequests) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  config.faults.loss = 0.3;  // bootstrap requests fail often enough
  ScenarioRunner runner(tr, config, 3);
  // Populate the vote space so top-K answers are non-empty: a retry can
  // only "succeed" when there is something to learn.
  const auto firsts = trace::earliest_arrivals(tr, 1);
  runner.publish_moderation(firsts[0], kMinute, "metadata");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != firsts[0]) {
      runner.script_vote_on_receipt(p, firsts[0], Opinion::kPositive);
    }
  }
  runner.run_until(tr.duration);
  const sim::FaultCounters total = runner.fault_stats().total();
  EXPECT_GT(total.timeouts, 0u);
  EXPECT_GT(total.retries, 0u);
  EXPECT_GT(total.retry_successes, 0u);
  // The budget bounds the chain: attempts never exceed budget per timeout.
  EXPECT_LE(total.retries,
            total.timeouts * config.faults.vp_retry_budget);
}

TEST(Experiment, RunReplicasAggregates) {
  trace::GeneratorParams params;
  params.n_peers = 10;
  params.n_swarms = 1;
  params.duration = kHour * 6;
  const auto traces = trace::generate_dataset(params, 3, 3);
  const auto results = run_replicas(
      traces,
      [](const trace::Trace& tr, std::size_t index) {
        ScenarioConfig config;
        ScenarioRunner runner(tr, config, 100 + index);
        ReplicaResult result;
        metrics::TimeSeries series;
        runner.sample_every(kHour, [&](Time t) {
          series.add(t, static_cast<double>(runner.online_count()));
        });
        runner.run_until(tr.duration);
        result.series["online"] = series;
        return result;
      },
      /*threads=*/2);
  ASSERT_EQ(results.size(), 3u);
  const auto agg = aggregate_named(results, "online");
  EXPECT_EQ(agg.times.size(), 7u);  // t = 0..6h inclusive
  const auto missing = aggregate_named(results, "nope");
  EXPECT_TRUE(missing.times.empty());
}

}  // namespace
}  // namespace tribvote::core
