#include "bt/swarm.hpp"

#include <gtest/gtest.h>

#include "bt/transfer_ledger.hpp"

#include <vector>

namespace tribvote::bt {
namespace {

/// Fixture building a small swarm: peer 0 seeds a 10-piece file; peers have
/// generous symmetric capacities unless a test overrides them.
class SwarmTest : public ::testing::Test {
 protected:
  static constexpr double kDt = 10.0;

  void build(std::size_t n_peers, std::int64_t size_mb = 10,
             double up_kbps = 1024.0) {
    peers_.clear();
    for (PeerId id = 0; id < n_peers; ++id) {
      trace::PeerProfile p;
      p.id = id;
      p.connectable = true;
      p.upload_kbps = up_kbps;
      p.download_kbps = 8 * up_kbps;
      peers_.push_back(p);
    }
    spec_ = trace::SwarmSpec{};
    spec_.id = 0;
    spec_.size_mb = size_mb;
    spec_.piece_kb = 1024;  // 1 MB pieces -> size_mb pieces
    spec_.initial_seeder = 0;
    ledger_ = std::make_unique<TransferLedger>(n_peers);
    bandwidth_ = std::make_unique<BandwidthAllocator>(
        std::vector<double>(n_peers, up_kbps),
        std::vector<double>(n_peers, 8 * up_kbps));
    swarm_ = std::make_unique<Swarm>(spec_, peers_, *ledger_, *bandwidth_,
                                     util::Rng(7));
  }

  /// Run rounds until `peer` completes or `max_rounds` elapse.
  int run_until_complete(PeerId peer, int max_rounds = 5000) {
    int rounds = 0;
    while (!swarm_->has_completed(peer) && rounds < max_rounds) {
      swarm_->tick(kDt);
      ++rounds;
    }
    return rounds;
  }

  std::vector<trace::PeerProfile> peers_;
  trace::SwarmSpec spec_;
  std::unique_ptr<TransferLedger> ledger_;
  std::unique_ptr<BandwidthAllocator> bandwidth_;
  std::unique_ptr<Swarm> swarm_;
};

TEST_F(SwarmTest, SeederStartsComplete) {
  build(2);
  swarm_->add_member(0, /*as_seed=*/true);
  EXPECT_TRUE(swarm_->has_completed(0));
  EXPECT_DOUBLE_EQ(swarm_->progress(0), 1.0);
  EXPECT_EQ(swarm_->active_count(), 1u);
}

TEST_F(SwarmTest, SingleLeecherDownloadsFromSeed) {
  build(2);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  bool completed = false;
  swarm_->on_complete = [&](PeerId p) { completed = (p == 1); };
  const int rounds = run_until_complete(1);
  EXPECT_TRUE(swarm_->has_completed(1));
  EXPECT_TRUE(completed);
  // 10 MB at 1 MB/s (1024 KB/s) ≈ 10 s of transfer = 1 round minimum;
  // allow protocol overhead but require sane throughput.
  EXPECT_LE(rounds, 40) << "download took implausibly long";
  EXPECT_NEAR(ledger_->uploaded_mb(0, 1), 10.0, 0.5);
}

TEST_F(SwarmTest, MultipleLeechersAllComplete) {
  build(6);
  swarm_->add_member(0, true);
  for (PeerId p = 1; p < 6; ++p) swarm_->add_member(p, false);
  for (int round = 0; round < 5000; ++round) {
    swarm_->tick(kDt);
    bool all = true;
    for (PeerId p = 1; p < 6; ++p) all = all && swarm_->has_completed(p);
    if (all) break;
  }
  for (PeerId p = 1; p < 6; ++p) {
    EXPECT_TRUE(swarm_->has_completed(p)) << "peer " << p;
  }
}

TEST_F(SwarmTest, LeechersUploadToEachOther) {
  build(6);
  swarm_->add_member(0, true);
  for (PeerId p = 1; p < 6; ++p) swarm_->add_member(p, false);
  for (int round = 0; round < 600; ++round) swarm_->tick(kDt);
  // Piece exchange between leechers must have happened (not pure
  // client-server from the seed).
  double leecher_to_leecher = 0;
  for (PeerId a = 1; a < 6; ++a) {
    for (PeerId b = 1; b < 6; ++b) {
      if (a != b) leecher_to_leecher += ledger_->uploaded_mb(a, b);
    }
  }
  EXPECT_GT(leecher_to_leecher, 1.0);
}

TEST_F(SwarmTest, FirewalledPairCannotExchange) {
  build(3);
  peers_[0].connectable = false;
  peers_[2].connectable = false;
  // Rebuild with the modified profiles (span references peers_).
  swarm_ = std::make_unique<Swarm>(spec_, peers_, *ledger_, *bandwidth_,
                                   util::Rng(7));
  swarm_->add_member(0, true);   // firewalled seed
  swarm_->add_member(2, false);  // firewalled leecher
  for (int round = 0; round < 200; ++round) swarm_->tick(kDt);
  EXPECT_EQ(ledger_->uploaded_mb(0, 2), 0.0);
  EXPECT_FALSE(swarm_->has_completed(2));

  // A connectable relay unblocks the swarm.
  swarm_->add_member(1, false);
  const int rounds = run_until_complete(2);
  EXPECT_TRUE(swarm_->has_completed(2)) << "after " << rounds << " rounds";
  EXPECT_EQ(ledger_->uploaded_mb(0, 2), 0.0);  // still no direct link
  EXPECT_GT(ledger_->uploaded_mb(1, 2), 0.0);  // relayed via peer 1
}

TEST_F(SwarmTest, DeactivateStopsTransfersAndPreservesPieces) {
  build(2, /*size_mb=*/10, /*up_kbps=*/256.0);  // 2.5 MB per 10 s round
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  for (int round = 0; round < 3; ++round) swarm_->tick(kDt);
  const double progress = swarm_->progress(1);
  EXPECT_GT(progress, 0.0);
  EXPECT_LT(progress, 1.0);

  swarm_->deactivate(1);
  EXPECT_FALSE(swarm_->is_active(1));
  for (int round = 0; round < 10; ++round) swarm_->tick(kDt);
  EXPECT_DOUBLE_EQ(swarm_->progress(1), progress);  // nothing moved

  swarm_->reactivate(1);
  run_until_complete(1);
  EXPECT_TRUE(swarm_->has_completed(1));
}

TEST_F(SwarmTest, DeactivatedSeedStallsSwarm) {
  build(2);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  swarm_->deactivate(0);
  for (int round = 0; round < 50; ++round) swarm_->tick(kDt);
  EXPECT_DOUBLE_EQ(swarm_->progress(1), 0.0);
}

TEST_F(SwarmTest, LeaveRemovesMember) {
  build(3);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  swarm_->add_member(2, false);
  swarm_->leave(1);
  EXPECT_FALSE(swarm_->is_member(1));
  EXPECT_EQ(swarm_->active_count(), 2u);
  run_until_complete(2);
  EXPECT_TRUE(swarm_->has_completed(2));
}

TEST_F(SwarmTest, CompletedLeecherSeedsOthers) {
  build(3);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  run_until_complete(1);
  ASSERT_TRUE(swarm_->has_completed(1));
  // Seed 0 goes away; the completed leecher carries the swarm.
  swarm_->deactivate(0);
  swarm_->add_member(2, false);
  run_until_complete(2);
  EXPECT_TRUE(swarm_->has_completed(2));
  EXPECT_GT(ledger_->uploaded_mb(1, 2), 0.0);
}

TEST_F(SwarmTest, OnCompleteFiresExactlyOnce) {
  build(2);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  int fires = 0;
  swarm_->on_complete = [&](PeerId) { ++fires; };
  run_until_complete(1);
  for (int round = 0; round < 20; ++round) swarm_->tick(kDt);
  EXPECT_EQ(fires, 1);
}

TEST_F(SwarmTest, LedgerConservation) {
  build(4);
  swarm_->add_member(0, true);
  for (PeerId p = 1; p < 4; ++p) swarm_->add_member(p, false);
  for (int round = 0; round < 2000; ++round) swarm_->tick(kDt);
  // Total uploaded == total downloaded, and every completed peer
  // downloaded at least the file size.
  double up = 0, down = 0;
  for (PeerId p = 0; p < 4; ++p) {
    up += ledger_->total_uploaded_mb(p);
    down += ledger_->total_downloaded_mb(p);
  }
  EXPECT_NEAR(up, down, 1e-6);
  for (PeerId p = 1; p < 4; ++p) {
    if (swarm_->has_completed(p)) {
      EXPECT_GE(ledger_->total_downloaded_mb(p),
                static_cast<double>(spec_.size_mb) - 0.01);
    }
  }
}

TEST_F(SwarmTest, NoTransfersWithoutCounterpart) {
  build(2);
  swarm_->add_member(1, false);  // leecher alone, no seed
  for (int round = 0; round < 50; ++round) swarm_->tick(kDt);
  EXPECT_DOUBLE_EQ(swarm_->progress(1), 0.0);
  EXPECT_EQ(ledger_->total_uploaded_mb(0), 0.0);
}

TEST_F(SwarmTest, SlowUploaderBoundsThroughput) {
  build(2, /*size_mb=*/10, /*up_kbps=*/128.0);  // 0.125 MB/s seed
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  // 10 MB at 0.125 MB/s = 80 s = 8 rounds minimum.
  int rounds = run_until_complete(1);
  EXPECT_GE(rounds, 8);
  EXPECT_TRUE(swarm_->has_completed(1));
}

// ---- streaming workload ------------------------------------------------------

TEST(StreamingSpec, ParseOnOffAndKeys) {
  StreamingConfig s;
  ASSERT_TRUE(parse_streaming_spec("off", s, nullptr));
  EXPECT_FALSE(s.enabled);
  ASSERT_TRUE(parse_streaming_spec("on", s, nullptr));
  EXPECT_TRUE(s.enabled);
  std::string error;
  ASSERT_TRUE(parse_streaming_spec("window=4,startup=2,kbps=256", s, &error))
      << error;
  EXPECT_TRUE(s.enabled);  // a key=value list implies "on"
  EXPECT_EQ(s.window, 4u);
  EXPECT_EQ(s.startup_pieces, 2u);
  EXPECT_DOUBLE_EQ(s.playback_kbps, 256.0);
}

TEST(StreamingSpec, ParseRejectsBadKeysAndRanges) {
  StreamingConfig s;
  std::string error;
  EXPECT_FALSE(parse_streaming_spec("bogus=1", s, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  EXPECT_FALSE(parse_streaming_spec("window=0", s, nullptr));
  EXPECT_FALSE(parse_streaming_spec("startup=0", s, nullptr));
  EXPECT_FALSE(parse_streaming_spec("kbps=0", s, nullptr));
  EXPECT_FALSE(s.enabled);  // a failed parse leaves the config off
}

TEST(StreamingSpec, DescribeNamesTheKnobs) {
  EXPECT_EQ(describe(StreamingConfig{}), "off");
  StreamingConfig s;
  s.enabled = true;
  s.window = 4;
  EXPECT_NE(describe(s).find("window=4"), std::string::npos);
}

class StreamingSwarmTest : public SwarmTest {
 protected:
  void build_streaming(std::size_t n_peers, const StreamingConfig& s,
                       std::int64_t size_mb = 10, double up_kbps = 1024.0) {
    build(n_peers, size_mb, up_kbps);
    swarm_ = std::make_unique<Swarm>(spec_, peers_, *ledger_, *bandwidth_,
                                     util::Rng(7), s);
  }
};

TEST_F(StreamingSwarmTest, FastLinkPlaysEveryPieceOnTime) {
  StreamingConfig s;
  s.enabled = true;  // defaults: window 8, startup 4, 512 kbps playback
  build_streaming(2, s);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  run_until_complete(1);
  // Playback (10 pieces at ~16 s each) outlives the download; let the
  // player drain.
  for (int round = 0; round < 40; ++round) swarm_->tick(kDt);
  const StreamingTotals& t = swarm_->streaming_totals();
  EXPECT_EQ(t.started, 1u);
  EXPECT_EQ(t.finished, 1u);
  EXPECT_EQ(t.pieces_on_time, 10u);
  EXPECT_EQ(t.deadline_misses, 0u);
  EXPECT_EQ(swarm_->playback_pos(1), 10u);
}

TEST_F(StreamingSwarmTest, ConstrainedBandwidthMissesDeadlines) {
  StreamingConfig s;
  s.enabled = true;
  s.window = 4;
  s.startup_pieces = 2;
  s.playback_kbps = 8192.0;  // ~1 s per piece: the player outruns the link
  build_streaming(2, s, /*size_mb=*/10, /*up_kbps=*/32.0);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  for (int round = 0; round < 200; ++round) swarm_->tick(kDt);
  const StreamingTotals& t = swarm_->streaming_totals();
  EXPECT_EQ(t.started, 1u);
  EXPECT_EQ(t.finished, 1u);
  EXPECT_GT(t.deadline_misses, 0u);
  // Stall-free skip model: every piece is either on time or skipped.
  EXPECT_EQ(t.pieces_on_time + t.deadline_misses, 10u);
  // Skipped pieces stay fetchable; the download itself still completes.
  EXPECT_TRUE(swarm_->has_completed(1));
}

TEST_F(StreamingSwarmTest, SeedsNeverStartPlayback) {
  StreamingConfig s;
  s.enabled = true;
  build_streaming(2, s);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  for (int round = 0; round < 5; ++round) swarm_->tick(kDt);
  EXPECT_EQ(swarm_->playback_pos(0), 10u);  // a seed's player is done
  EXPECT_LE(swarm_->streaming_totals().started, 1u);  // only the leecher
}

TEST_F(StreamingSwarmTest, StartupBufferGatesPlayback) {
  StreamingConfig s;
  s.enabled = true;
  s.startup_pieces = 4;
  s.playback_kbps = 8192.0;
  // 0.25 MB per 10 s round: the 4-piece startup buffer takes ~160 s.
  build_streaming(2, s, /*size_mb=*/10, /*up_kbps=*/25.6);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  for (int round = 0; round < 8; ++round) swarm_->tick(kDt);
  // Two pieces in: playback has not begun, nothing consumed or missed.
  EXPECT_EQ(swarm_->streaming_totals().started, 0u);
  EXPECT_EQ(swarm_->streaming_totals().deadline_misses, 0u);
  EXPECT_EQ(swarm_->playback_pos(1), 0u);
}

TEST_F(StreamingSwarmTest, DisabledStreamingLeavesTheDownloadWorkloadAlone) {
  // Same seed, same swarm, streaming off both explicitly and by default:
  // ledger traffic must be identical tick for tick (the inert-when-off
  // contract at the swarm level).
  build(2);
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  std::vector<double> plain;
  for (int round = 0; round < 30; ++round) {
    swarm_->tick(kDt);
    plain.push_back(ledger_->uploaded_mb(0, 1));
  }
  build_streaming(2, StreamingConfig{});  // enabled = false
  swarm_->add_member(0, true);
  swarm_->add_member(1, false);
  for (int round = 0; round < 30; ++round) {
    swarm_->tick(kDt);
    EXPECT_DOUBLE_EQ(ledger_->uploaded_mb(0, 1),
                     plain[static_cast<std::size_t>(round)])
        << round;
  }
  EXPECT_EQ(swarm_->streaming_totals().started, 0u);
}

}  // namespace
}  // namespace tribvote::bt
