#include <gtest/gtest.h>

#include "crypto/field.hpp"
#include "crypto/schnorr.hpp"
#include "util/rng.hpp"

namespace tribvote::crypto {
namespace {

TEST(Field, AddSubWrapCorrectly) {
  EXPECT_EQ(add_mod(kPrime - 1, 1), 0u);
  EXPECT_EQ(add_mod(kPrime - 1, 2), 1u);
  EXPECT_EQ(sub_mod(0, 1), kPrime - 1);
  EXPECT_EQ(sub_mod(5, 3), 2u);
}

TEST(Field, MulModSmallValues) {
  EXPECT_EQ(mul_mod(7, 6), 42u);
  EXPECT_EQ(mul_mod(0, 123456), 0u);
  EXPECT_EQ(mul_mod(1, kPrime - 1), kPrime - 1);
}

TEST(Field, MulModLargeValuesMatch128BitReference) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng() % kPrime;
    const std::uint64_t b = rng() % kPrime;
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * b) % kPrime);
    EXPECT_EQ(mul_mod(a, b), expected);
  }
}

TEST(Field, PowModAgreesWithRepeatedMultiplication) {
  std::uint64_t acc = 1;
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(pow_mod(3, e), acc);
    acc = mul_mod(acc, 3);
  }
}

TEST(Field, FermatLittleTheorem) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = 1 + rng() % (kPrime - 1);
    EXPECT_EQ(pow_mod(a, kPrime - 1), 1u) << "a=" << a;
  }
}

TEST(Field, InverseIsCorrect) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + rng() % (kPrime - 1);
    EXPECT_EQ(mul_mod(a, inv_mod(a)), 1u);
  }
}

TEST(Field, GeneratorHasLargeOrder) {
  // g must not collapse in the small prime-factor subgroups of p-1.
  // p - 1 = 2^61 - 2 = 2 · 3^2 · 5^2 · 7 · 11 · 13 · 31 · 41 · 61 · 151 ·
  //         331 · 1321. Check g^((p-1)/q) != 1 for each prime factor q.
  for (std::uint64_t q :
       {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 31ULL, 41ULL, 61ULL, 151ULL,
        331ULL, 1321ULL}) {
    ASSERT_EQ((kPrime - 1) % q, 0u) << q << " must divide p-1";
    EXPECT_NE(pow_mod(kGenerator, (kPrime - 1) / q), 1u)
        << "generator collapses at factor " << q;
  }
}

TEST(Field, MulModAnyMatchesReference) {
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t m = 1 + rng() % (~0ULL >> 1);
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a % m) * (b % m)) % m);
    EXPECT_EQ(mul_mod_any(a, b, m), expected);
  }
}

TEST(Schnorr, KeypairIsConsistent) {
  util::Rng rng(5);
  const KeyPair keys = generate_keypair(rng);
  EXPECT_EQ(keys.pub.y, pow_mod(kGenerator, keys.sec.x));
  EXPECT_GT(keys.sec.x, 0u);
}

TEST(Schnorr, SignVerifyRoundtrip) {
  util::Rng rng(6);
  const KeyPair keys = generate_keypair(rng);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t msg = rng();
    const Signature sig = sign(keys, msg, rng);
    EXPECT_TRUE(verify(keys.pub, msg, sig));
  }
}

TEST(Schnorr, TamperedMessageFails) {
  util::Rng rng(7);
  const KeyPair keys = generate_keypair(rng);
  const std::uint64_t msg = 0xdeadbeef;
  const Signature sig = sign(keys, msg, rng);
  EXPECT_FALSE(verify(keys.pub, msg ^ 1, sig));
  EXPECT_FALSE(verify(keys.pub, msg + 1, sig));
}

TEST(Schnorr, WrongKeyFails) {
  util::Rng rng(8);
  const KeyPair alice = generate_keypair(rng);
  const KeyPair bob = generate_keypair(rng);
  const Signature sig = sign(alice, 42, rng);
  EXPECT_FALSE(verify(bob.pub, 42, sig));
}

TEST(Schnorr, TamperedSignatureFails) {
  util::Rng rng(9);
  const KeyPair keys = generate_keypair(rng);
  const Signature sig = sign(keys, 777, rng);
  Signature bad_e = sig;
  bad_e.e = (bad_e.e + 1) % kGroupOrder;
  EXPECT_FALSE(verify(keys.pub, 777, bad_e));
  Signature bad_s = sig;
  bad_s.s = (bad_s.s + 1) % kGroupOrder;
  EXPECT_FALSE(verify(keys.pub, 777, bad_s));
}

TEST(Schnorr, RejectsMalformedInputs) {
  util::Rng rng(10);
  const KeyPair keys = generate_keypair(rng);
  const Signature sig = sign(keys, 1, rng);
  EXPECT_FALSE(verify(PublicKey{0}, 1, sig));             // zero key
  EXPECT_FALSE(verify(PublicKey{kPrime}, 1, sig));        // out of field
  EXPECT_FALSE(verify(keys.pub, 1, Signature{0, sig.s})); // zero challenge
  EXPECT_FALSE(
      verify(keys.pub, 1, Signature{kGroupOrder, sig.s}));  // e too large
  EXPECT_FALSE(
      verify(keys.pub, 1, Signature{sig.e, kGroupOrder}));  // s too large
}

TEST(Schnorr, NoncesMakeSignaturesDistinct) {
  util::Rng rng(11);
  const KeyPair keys = generate_keypair(rng);
  const Signature a = sign(keys, 5, rng);
  const Signature b = sign(keys, 5, rng);
  EXPECT_NE(a, b);  // different nonce k each time
  EXPECT_TRUE(verify(keys.pub, 5, a));
  EXPECT_TRUE(verify(keys.pub, 5, b));
}

TEST(Schnorr, DistinctSeedsDistinctKeys) {
  util::Rng r1(100), r2(101);
  EXPECT_NE(generate_keypair(r1).pub.y, generate_keypair(r2).pub.y);
}

// Property sweep: roundtrip holds across many independent identities.
class SchnorrParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrParamTest, RoundtripAndCrossRejection) {
  util::Rng rng(GetParam());
  const KeyPair keys = generate_keypair(rng);
  const std::uint64_t msg = rng();
  const Signature sig = sign(keys, msg, rng);
  EXPECT_TRUE(verify(keys.pub, msg, sig));
  EXPECT_FALSE(verify(keys.pub, msg ^ 0x8000000000000000ULL, sig));
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SchnorrParamTest,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace tribvote::crypto
