#include <gtest/gtest.h>

#include "attack/front_peer.hpp"
#include "bartercast/experience.hpp"
#include "bartercast/maxflow.hpp"
#include "bartercast/protocol.hpp"
#include "bartercast/subjective_graph.hpp"
#include "bt/transfer_ledger.hpp"
#include "util/rng.hpp"

namespace tribvote::bartercast {
namespace {

TEST(SubjectiveGraph, DirectEdgesAreAuthoritative) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 10.0, 100);
  EXPECT_DOUBLE_EQ(g.edge_mb(1, 2), 10.0);
  // Gossip cannot override a direct observation, however fresh.
  g.merge_gossip(BarterRecord{1, 2, 999.0, 200});
  EXPECT_DOUBLE_EQ(g.edge_mb(1, 2), 10.0);
  // But the owner can refresh its own observation.
  g.update_direct(1, 2, 15.0, 300);
  EXPECT_DOUBLE_EQ(g.edge_mb(1, 2), 15.0);
}

TEST(SubjectiveGraph, FreshestGossipWins) {
  SubjectiveGraph g;
  g.merge_gossip(BarterRecord{1, 2, 5.0, 100});
  g.merge_gossip(BarterRecord{1, 2, 8.0, 200});
  EXPECT_DOUBLE_EQ(g.edge_mb(1, 2), 8.0);
  g.merge_gossip(BarterRecord{1, 2, 3.0, 150});  // stale
  EXPECT_DOUBLE_EQ(g.edge_mb(1, 2), 8.0);
}

TEST(SubjectiveGraph, RejectsMalformedRecords) {
  SubjectiveGraph g;
  g.merge_gossip(BarterRecord{3, 3, 5.0, 1});   // self-loop
  g.merge_gossip(BarterRecord{1, 2, -4.0, 1});  // negative
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(SubjectiveGraph, EdgeQueries) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 10.0, 1);
  g.update_direct(3, 2, 7.0, 1);
  g.update_direct(2, 4, 2.0, 1);
  const auto out = g.out_edges(2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 4u);
  const auto in = g.in_edges(2);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_mb(9, 9), 0.0);
  EXPECT_TRUE(g.out_edges(42).empty());
}

TEST(SubjectiveGraph, ClaimedUploadSums) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 10.0, 1);
  g.update_direct(1, 3, 5.0, 1);
  EXPECT_DOUBLE_EQ(g.claimed_upload_mb(1), 15.0);
  EXPECT_DOUBLE_EQ(g.claimed_upload_mb(2), 0.0);
}

TEST(MaxFlow, DirectEdgeOnly) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 12.0, 1);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 2, 1), 12.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 2, 2), 12.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 2, 1, 2), 0.0);  // direction matters
}

TEST(MaxFlow, TwoHopBottleneck) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 10.0, 1);
  g.update_direct(2, 3, 4.0, 1);
  // 1 -> 2 -> 3 bottlenecked at 4.
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 3, 2), 4.0);
  // One hop cannot reach.
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 3, 1), 0.0);
}

TEST(MaxFlow, ParallelPathsSum) {
  SubjectiveGraph g;
  g.update_direct(1, 4, 1.0, 1);  // direct
  g.update_direct(1, 2, 5.0, 1);
  g.update_direct(2, 4, 3.0, 1);  // via 2: min(5,3)=3
  g.update_direct(1, 3, 2.0, 1);
  g.update_direct(3, 4, 9.0, 1);  // via 3: min(2,9)=2
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 4, 2), 6.0);
}

TEST(MaxFlow, SelfAndUnknownNodes) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 5.0, 1);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 1, 2), 0.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 7, 8, 2), 0.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 2, 0), 0.0);
}

TEST(MaxFlow, LongerBoundUsesDeeperPaths) {
  SubjectiveGraph g;
  g.update_direct(1, 2, 5.0, 1);
  g.update_direct(2, 3, 5.0, 1);
  g.update_direct(3, 4, 5.0, 1);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 4, 2), 0.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 4, 3), 5.0);
}

// Property: on random graphs, the generic Edmonds–Karp (bound >= 2 via the
// EK path) agrees with the closed form used for bound == 2.
class MaxFlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowPropertyTest, ClosedFormMatchesEkOnTwoHopSubgraph) {
  util::Rng rng(GetParam());
  SubjectiveGraph g;
  constexpr PeerId kNodes = 8;
  for (int e = 0; e < 20; ++e) {
    const auto a = static_cast<PeerId>(rng.next_below(kNodes));
    const auto b = static_cast<PeerId>(rng.next_below(kNodes));
    if (a == b) continue;
    g.update_direct(a, b, rng.next_double(0.5, 20.0), 1);
  }
  for (PeerId s = 0; s < kNodes; ++s) {
    for (PeerId t = 0; t < kNodes; ++t) {
      if (s == t) continue;
      // Closed form (bound 2).
      const double closed = max_flow(g, s, t, 2);
      // Reference: direct + sum of per-intermediary bottlenecks.
      double reference = g.edge_mb(s, t);
      for (PeerId k = 0; k < kNodes; ++k) {
        if (k == s || k == t) continue;
        const double a = g.edge_mb(s, k);
        const double b = g.edge_mb(k, t);
        if (a > 0 && b > 0) reference += std::min(a, b);
      }
      EXPECT_NEAR(closed, reference, 1e-9) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MaxFlowPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class BarterAgentTest : public ::testing::Test {
 protected:
  BarterAgentTest() : ledger_(6) {}
  bt::TransferLedger ledger_;
};

TEST_F(BarterAgentTest, OutgoingRecordsAreOwnDirectTransfers) {
  ledger_.add_transfer(0, 1, 10.0 * 1024 * 1024);
  ledger_.add_transfer(2, 0, 5.0 * 1024 * 1024);
  ledger_.add_transfer(2, 3, 99.0 * 1024 * 1024);  // not adjacent to 0
  BarterAgent agent(0, BarterConfig{});
  const auto records = agent.outgoing_records(ledger_, 100);
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.from == 0 || r.to == 0);
    EXPECT_EQ(r.reported_at, 100);
  }
}

TEST_F(BarterAgentTest, MessageCapKeepsLargest) {
  BarterConfig config;
  config.max_records_per_message = 2;
  for (PeerId p = 1; p < 6; ++p) {
    ledger_.add_transfer(0, p, static_cast<double>(p) * 1024 * 1024);
  }
  BarterAgent agent(0, config);
  const auto records = agent.outgoing_records(ledger_, 1);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].mb, 5.0);
  EXPECT_DOUBLE_EQ(records[1].mb, 4.0);
}

TEST_F(BarterAgentTest, ReceiveDropsNonAdjacentClaims) {
  BarterAgent agent(0, BarterConfig{});
  // Sender 1 claims a transfer between 2 and 3 — hearsay, dropped.
  agent.receive(1, {BarterRecord{2, 3, 50.0, 1}});
  EXPECT_DOUBLE_EQ(agent.graph().edge_mb(2, 3), 0.0);
  // Claims involving the sender are accepted.
  agent.receive(1, {BarterRecord{1, 4, 50.0, 1}});
  EXPECT_DOUBLE_EQ(agent.graph().edge_mb(1, 4), 50.0);
}

TEST_F(BarterAgentTest, ReceiveIgnoresClaimsAboutSelf) {
  BarterAgent agent(0, BarterConfig{});
  // Sender 5 claims it uploaded 500 MB to us — we know it didn't (no
  // direct edge in our ledger), so the claim is discarded and its
  // contribution stays zero.
  agent.receive(5, {BarterRecord{5, 0, 500.0, 1}});
  EXPECT_DOUBLE_EQ(agent.graph().edge_mb(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(agent.contribution_of(5), 0.0);
}

TEST_F(BarterAgentTest, ContributionUsesIndirectPaths) {
  BarterAgent agent(0, BarterConfig{});
  ledger_.add_transfer(2, 0, 8.0 * 1024 * 1024);  // 2 uploaded 8MB to me
  agent.sync_direct(ledger_, 1);
  EXPECT_NEAR(agent.contribution_of(2), 8.0, 1e-9);
  // 3 uploaded to 2 (learned via gossip from 2); flow 3 -> 2 -> 0.
  agent.receive(2, {BarterRecord{3, 2, 6.0, 2}});
  EXPECT_NEAR(agent.contribution_of(3), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(agent.contribution_of(0), 0.0);  // self
}

TEST_F(BarterAgentTest, SyncIsIncrementalButComplete) {
  BarterAgent agent(0, BarterConfig{});
  ledger_.add_transfer(1, 0, 3.0 * 1024 * 1024);
  agent.sync_direct(ledger_, 1);
  EXPECT_NEAR(agent.contribution_of(1), 3.0, 1e-9);
  // More data arrives; version bump forces a refresh.
  ledger_.add_transfer(1, 0, 4.0 * 1024 * 1024);
  agent.sync_direct(ledger_, 2);
  EXPECT_NEAR(agent.contribution_of(1), 7.0, 1e-9);
}

TEST(ExperienceFunction, ThresholdSemantics) {
  bt::TransferLedger ledger(3);
  BarterAgent agent(0, BarterConfig{});
  ledger.add_transfer(1, 0, 5.0 * 1024 * 1024);
  agent.sync_direct(ledger, 1);
  ExperienceFunction exp5(agent, 5.0);
  ExperienceFunction exp6(agent, 6.0);
  EXPECT_TRUE(exp5(1));    // exactly at threshold: experienced
  EXPECT_FALSE(exp6(1));
  EXPECT_FALSE(exp5(2));   // no contribution at all
}

TEST(AdaptiveThreshold, RaisesOnDispersionAndDecays) {
  AdaptiveThresholdParams params;
  params.t_min = 0.0;
  params.d_max = 0.4;
  AdaptiveThreshold at(params);
  EXPECT_DOUBLE_EQ(at.threshold_mb(), 0.0);
  // Calm: stays at the floor.
  at.observe_dispersion(0.1);
  EXPECT_DOUBLE_EQ(at.threshold_mb(), 0.0);
  // Attack-like dispersion: threshold climbs.
  at.observe_dispersion(0.8);
  const double raised1 = at.threshold_mb();
  EXPECT_GT(raised1, 0.0);
  at.observe_dispersion(0.8);
  EXPECT_GT(at.threshold_mb(), raised1);
  // Calm again: decays back toward the floor.
  double prev = at.threshold_mb();
  for (int i = 0; i < 50; ++i) {
    at.observe_dispersion(0.0);
    EXPECT_LE(at.threshold_mb(), prev);
    prev = at.threshold_mb();
  }
  EXPECT_DOUBLE_EQ(at.threshold_mb(), 0.0);
}

TEST(AdaptiveThreshold, RespectsCap) {
  AdaptiveThresholdParams params;
  params.t_max = 10.0;
  AdaptiveThreshold at(params);
  for (int i = 0; i < 30; ++i) at.observe_dispersion(1.0);
  EXPECT_DOUBLE_EQ(at.threshold_mb(), 10.0);
}

TEST(SubjectiveGraph, VersionBumpsExactlyOnFlowRelevantMutations) {
  SubjectiveGraph g;
  EXPECT_EQ(g.version(), 0u);
  g.update_direct(1, 2, 10.0, 100);  // new edge
  EXPECT_EQ(g.version(), 1u);
  g.update_direct(1, 2, 10.0, 200);  // unchanged value: no bump
  EXPECT_EQ(g.version(), 1u);
  g.update_direct(1, 2, 12.0, 300);  // value change
  EXPECT_EQ(g.version(), 2u);
  g.merge_gossip(BarterRecord{1, 2, 999.0, 400});  // loses to direct pin
  EXPECT_EQ(g.version(), 2u);
  g.merge_gossip(BarterRecord{3, 4, 5.0, 100});  // new gossip edge
  EXPECT_EQ(g.version(), 3u);
  g.merge_gossip(BarterRecord{3, 4, 5.0, 150});  // timestamp-only refresh
  EXPECT_EQ(g.version(), 3u);
  g.merge_gossip(BarterRecord{3, 4, 2.0, 50});  // stale report
  EXPECT_EQ(g.version(), 3u);
  g.merge_gossip(BarterRecord{3, 4, 7.0, 200});  // fresher, new value
  EXPECT_EQ(g.version(), 4u);
}

TEST(SubjectiveGraph, CsrSnapshotMatchesEdgeQueries) {
  SubjectiveGraph g;
  g.update_direct(5, 1, 10.0, 1);
  g.update_direct(1, 5, 3.0, 1);
  g.merge_gossip(BarterRecord{2, 5, 7.0, 1});
  const CsrSnapshot& snap = g.csr();
  EXPECT_EQ(snap.node_count(), 3u);
  EXPECT_EQ(snap.built_version, g.version());
  for (PeerId a : {1u, 2u, 5u}) {
    for (PeerId b : {1u, 2u, 5u}) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(snap.cap(snap.index_of(a), snap.index_of(b)),
                       g.edge_mb(a, b));
    }
  }
  EXPECT_EQ(snap.index_of(99), CsrSnapshot::kNoNode);
  // A mutation invalidates and rebuilds lazily.
  g.update_direct(5, 2, 4.0, 2);
  const CsrSnapshot& snap2 = g.csr();
  EXPECT_EQ(snap2.built_version, g.version());
  EXPECT_DOUBLE_EQ(snap2.cap(snap2.index_of(5), snap2.index_of(2)), 4.0);
}

TEST(SubjectiveGraph, DeltaCheckSeparatesRelevantFromIrrelevant) {
  SubjectiveGraph g;
  g.update_direct(1, 0, 5.0, 1);
  const std::uint64_t v = g.version();
  EXPECT_EQ(g.deltas_since(v, 1, 0), SubjectiveGraph::DeltaCheck::kUnaffected);
  // Edge (2, 3) lies on no hop-≤2 path 1 → 0.
  g.merge_gossip(BarterRecord{2, 3, 9.0, 1});
  EXPECT_EQ(g.deltas_since(v, 1, 0), SubjectiveGraph::DeltaCheck::kUnaffected);
  // But it is relevant to 2 → 0 (source side) and 1 → 3 (sink side).
  EXPECT_EQ(g.deltas_since(v, 2, 0), SubjectiveGraph::DeltaCheck::kAffected);
  EXPECT_EQ(g.deltas_since(v, 1, 3), SubjectiveGraph::DeltaCheck::kAffected);
}

TEST_F(BarterAgentTest, ContributionCacheHitsRevalidatesAndInvalidates) {
  BarterAgent agent(0, BarterConfig{});
  ledger_.add_transfer(2, 0, 8.0 * 1024 * 1024);
  agent.sync_direct(ledger_, 1);
  agent.receive(2, {BarterRecord{3, 2, 6.0, 2}});

  EXPECT_NEAR(agent.contribution_of(3), 6.0, 1e-9);
  const auto after_first = agent.cache_stats();
  EXPECT_EQ(after_first.misses, 1u);

  // Unchanged graph: pure hit.
  EXPECT_NEAR(agent.contribution_of(3), 6.0, 1e-9);
  EXPECT_EQ(agent.cache_stats().hits, after_first.hits + 1);

  // Gossip about an unrelated pair: stale version, but the delta log proves
  // the 3 → 0 flow untouched — revalidated, not recomputed.
  agent.receive(4, {BarterRecord{4, 5, 50.0, 3}});
  EXPECT_NEAR(agent.contribution_of(3), 6.0, 1e-9);
  EXPECT_EQ(agent.cache_stats().revalidations, after_first.revalidations + 1);
  EXPECT_EQ(agent.cache_stats().misses, after_first.misses);

  // A record on 3's out-edges is relevant: recomputed, new value visible.
  agent.receive(2, {BarterRecord{3, 2, 1.0, 9}});
  EXPECT_NEAR(agent.contribution_of(3), 1.0, 1e-9);
  EXPECT_EQ(agent.cache_stats().misses, after_first.misses + 1);
}

TEST_F(BarterAgentTest, CachedValueRespectsDirectPinning) {
  BarterAgent agent(0, BarterConfig{});
  ledger_.add_transfer(2, 0, 8.0 * 1024 * 1024);
  agent.sync_direct(ledger_, 1);
  EXPECT_NEAR(agent.contribution_of(2), 8.0, 1e-9);
  // Fresher gossip claiming a bigger 2 → 0 upload is ignored (claims about
  // self carry no weight), so the cached value must remain correct.
  agent.receive(2, {BarterRecord{2, 0, 500.0, 99}});
  EXPECT_NEAR(agent.contribution_of(2), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(agent.contribution_of(2),
                   max_flow(agent.graph(), 2, 0, 2));
}

TEST_F(BarterAgentTest, ContributionColumnMatchesPerQueryBitExactly) {
  BarterAgent agent(0, BarterConfig{});
  ledger_.add_transfer(2, 0, 8.0 * 1024 * 1024);
  ledger_.add_transfer(4, 0, 2.5 * 1024 * 1024);
  agent.sync_direct(ledger_, 1);
  agent.receive(2, {BarterRecord{3, 2, 6.0, 2}, BarterRecord{5, 2, 4.0, 2}});
  agent.receive(4, {BarterRecord{3, 4, 1.5, 3}});

  const std::vector<double>& column = agent.contribution_column(6);
  ASSERT_EQ(column.size(), 6u);
  for (PeerId j = 0; j < 6; ++j) {
    EXPECT_DOUBLE_EQ(column[j], agent.contribution_of(j)) << "j=" << j;
  }
  // The column is cached per graph version...
  const auto* before = column.data();
  EXPECT_EQ(agent.contribution_column(6).data(), before);
  // ...and rebuilt (with correct values) after any mutation.
  agent.receive(2, {BarterRecord{3, 2, 9.0, 5}});
  const std::vector<double>& fresh = agent.contribution_column(6);
  EXPECT_DOUBLE_EQ(fresh[3], agent.contribution_of(3));
  // min(9, 8) through 2 plus min(1.5, 2.5) through 4.
  EXPECT_NEAR(fresh[3], 9.5, 1e-9);
}

TEST(FrontPeerAttack, MaxFlowResistsWhereNaiveFails) {
  // Honest node 0; colluders 3,4,5 fabricate huge intra-clique transfers.
  // Colluder 3 ("the mole") genuinely uploaded only 1 MB to node 0.
  bt::TransferLedger ledger(6);
  ledger.add_transfer(3, 0, 1.0 * 1024 * 1024);

  BarterAgent honest(0, BarterConfig{});
  honest.sync_direct(ledger, 1);

  attack::FrontPeerBarterAgent mole(3, BarterConfig{}, {3, 4, 5},
                                    /*fake_mb=*/1000.0);
  honest.receive(3, mole.outgoing_records(ledger, 2));
  attack::FrontPeerBarterAgent shill(4, BarterConfig{}, {3, 4, 5}, 1000.0);
  honest.receive(4, shill.outgoing_records(ledger, 3));

  // Naive metric (sum of claimed upload) is wildly inflated...
  EXPECT_GE(honest.naive_contribution_of(4), 1000.0);
  // ...but max-flow throttles colluder 4 at the genuine 1 MB edge 3 -> 0.
  EXPECT_LE(honest.contribution_of(4), 1.0 + 1e-9);
  // And the mole itself cannot claim more than its genuine contribution
  // plus flow through its clique, all bottlenecked at real edges into 0.
  EXPECT_LE(honest.contribution_of(3), 1.0 + 1e-9);
}

}  // namespace
}  // namespace tribvote::bartercast
