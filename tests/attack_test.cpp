#include <gtest/gtest.h>

#include "attack/colluder.hpp"
#include "attack/front_peer.hpp"
#include "bt/transfer_ledger.hpp"
#include "vote/agent.hpp"

namespace tribvote::attack {
namespace {

crypto::KeyPair keys_for(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(rng);
}

class ColluderTest : public ::testing::Test {
 protected:
  ColluderTest()
      : keys_(keys_for(1)),
        plan_{/*spam=*/90, /*victim=*/1, /*decoys=*/{1, 2}},
        colluder_(99, keys_, vote::VoteConfig{}, [](PeerId) { return true; },
                  util::Rng(2), plan_) {}

  crypto::KeyPair keys_;
  ColluderPlan plan_;
  ColluderVoteAgent colluder_;
};

TEST_F(ColluderTest, AlwaysAnswersTopkWithSpamFirst) {
  // A fresh honest agent would answer null (bootstrapping); the colluder
  // always responds and puts M0 first.
  EXPECT_TRUE(colluder_.bootstrapping());
  const vote::RankedList lie = colluder_.answer_topk();
  ASSERT_FALSE(lie.empty());
  EXPECT_EQ(lie.front(), 90u);
  EXPECT_LE(lie.size(), colluder_.config().k);
}

TEST_F(ColluderTest, DecoysFillRemainingSlots) {
  const vote::RankedList lie = colluder_.answer_topk();
  ASSERT_EQ(lie.size(), 3u);
  EXPECT_EQ(lie[1], 1u);
  EXPECT_EQ(lie[2], 2u);
}

TEST_F(ColluderTest, OutgoingVotesPromoteSpamAndDemoteVictim) {
  const vote::VoteListMessage msg = colluder_.outgoing_votes(50);
  ASSERT_EQ(msg.votes.size(), 2u);
  Opinion spam_vote = Opinion::kNone, victim_vote = Opinion::kNone;
  for (const auto& v : msg.votes) {
    if (v.moderator == 90) spam_vote = v.opinion;
    if (v.moderator == 1) victim_vote = v.opinion;
  }
  EXPECT_EQ(spam_vote, Opinion::kPositive);
  EXPECT_EQ(victim_vote, Opinion::kNegative);
}

TEST_F(ColluderTest, MessagesAreValidlySignedLies) {
  // The PKI cannot stop a colluder lying about its own opinion: the
  // signature verifies.
  const vote::VoteListMessage msg = colluder_.outgoing_votes(50);
  EXPECT_TRUE(crypto::verify(msg.key, msg.digest(), msg.signature));
}

TEST_F(ColluderTest, HonestReceiverStillAppliesExperience) {
  // An honest node that does NOT consider the colluder experienced rejects
  // its vote list — the BallotBox tier holds.
  const crypto::KeyPair hk = keys_for(3);
  vote::VoteAgent honest(0, hk, vote::VoteConfig{},
                         [](PeerId) { return false; }, util::Rng(4));
  EXPECT_EQ(honest.receive_votes(colluder_.outgoing_votes(60), 60),
            vote::ReceiveResult::kInexperienced);
  EXPECT_EQ(honest.ballot_box().unique_voters(), 0u);
}

TEST_F(ColluderTest, BootstrappingHonestNodeIsPolluted) {
  // But the same node, while bootstrapping, accepts the colluder's top-K
  // lie — the VoxPopuli window.
  const crypto::KeyPair hk = keys_for(5);
  vote::VoteAgent honest(0, hk, vote::VoteConfig{},
                         [](PeerId) { return false; }, util::Rng(6));
  ASSERT_TRUE(honest.bootstrapping());
  honest.receive_topk(colluder_.answer_topk());
  EXPECT_EQ(honest.top_moderator(), std::optional<ModeratorId>{90});
}

TEST(ColluderPlanTest, NoVictimMeansSingleVote) {
  ColluderPlan plan;
  plan.spam_moderator = 90;
  const crypto::KeyPair kk = keys_for(7);
  ColluderVoteAgent colluder(99, kk, vote::VoteConfig{},
                             [](PeerId) { return true; }, util::Rng(8),
                             plan);
  EXPECT_EQ(colluder.outgoing_votes(1).votes.size(), 1u);
  EXPECT_EQ(colluder.answer_topk(), (vote::RankedList{90}));
}

TEST(FrontPeerTest, FabricatesIntraCliqueRecords) {
  bt::TransferLedger ledger(5);
  ledger.add_transfer(3, 0, 2.0 * 1024 * 1024);  // one genuine record
  FrontPeerBarterAgent mole(3, bartercast::BarterConfig{}, {3, 4}, 500.0);
  const auto records = mole.outgoing_records(ledger, 10);
  // 1 genuine + 2 fabricated (3->4 and 4->3).
  ASSERT_EQ(records.size(), 3u);
  int fakes = 0;
  for (const auto& r : records) {
    if (r.mb == 500.0) {
      ++fakes;
      EXPECT_TRUE(r.from == 3 || r.to == 3);  // adjacency preserved
    }
  }
  EXPECT_EQ(fakes, 2);
}

TEST(FrontPeerTest, GenuineBehaviourUnderneath) {
  bt::TransferLedger ledger(5);
  FrontPeerBarterAgent mole(3, bartercast::BarterConfig{}, {3}, 500.0);
  // Clique of one: no fakes, only (empty) genuine records.
  EXPECT_TRUE(mole.outgoing_records(ledger, 10).empty());
}

}  // namespace
}  // namespace tribvote::attack
