#include <gtest/gtest.h>

#include <cmath>

#include "bt/transfer_ledger.hpp"
#include "metrics/cev.hpp"
#include "metrics/ordering.hpp"
#include "metrics/timeseries.hpp"

namespace tribvote::metrics {
namespace {

TEST(Cev, EmptyAndSingleton) {
  const auto never = [](PeerId, PeerId) { return false; };
  EXPECT_EQ(collective_experience_value(0, never), 0.0);
  EXPECT_EQ(collective_experience_value(1, never), 0.0);
}

TEST(Cev, FullAndEmptyGraphs) {
  EXPECT_DOUBLE_EQ(
      collective_experience_value(5, [](PeerId, PeerId) { return true; }),
      1.0);
  EXPECT_DOUBLE_EQ(
      collective_experience_value(5, [](PeerId, PeerId) { return false; }),
      0.0);
}

TEST(Cev, DirectedCounting) {
  // Only the single ordered pair (0,1) experienced: 1 / (3*2) = 1/6.
  const auto e = [](PeerId i, PeerId j) { return i == 0 && j == 1; };
  EXPECT_NEAR(collective_experience_value(3, e), 1.0 / 6.0, 1e-12);
}

TEST(Cev, AgentOverloadMatchesPredicate) {
  bt::TransferLedger ledger(3);
  ledger.add_transfer(1, 0, 10.0 * 1024 * 1024);
  std::vector<std::unique_ptr<bartercast::BarterAgent>> agents;
  for (PeerId p = 0; p < 3; ++p) {
    agents.push_back(std::make_unique<bartercast::BarterAgent>(
        p, bartercast::BarterConfig{}));
    agents.back()->sync_direct(ledger, 1);
  }
  std::vector<const bartercast::BarterAgent*> ptrs;
  for (const auto& a : agents) ptrs.push_back(a.get());
  // Only e_0(1) holds (1 uploaded 10MB to 0 >= 5MB): CEV = 1/6.
  EXPECT_NEAR(collective_experience_value(
                  std::span<const bartercast::BarterAgent* const>(ptrs),
                  5.0),
              1.0 / 6.0, 1e-12);
}

TEST(Ordering, CorrectWhenExactMatch) {
  const std::vector<ModeratorId> expected{1, 2, 3};
  EXPECT_TRUE(ordering_correct({1, 2, 3}, expected));
}

TEST(Ordering, CorrectWithInterleavedOthers) {
  const std::vector<ModeratorId> expected{1, 2, 3};
  EXPECT_TRUE(ordering_correct({9, 1, 7, 2, 8, 3}, expected));
}

TEST(Ordering, IncorrectWhenSwapped) {
  const std::vector<ModeratorId> expected{1, 2, 3};
  EXPECT_FALSE(ordering_correct({2, 1, 3}, expected));
  EXPECT_FALSE(ordering_correct({1, 3, 2}, expected));
  EXPECT_FALSE(ordering_correct({3, 2, 1}, expected));
}

TEST(Ordering, IncorrectWhenIncomplete) {
  const std::vector<ModeratorId> expected{1, 2, 3};
  EXPECT_FALSE(ordering_correct({1, 2}, expected));
  EXPECT_FALSE(ordering_correct({}, expected));
}

TEST(Ordering, FractionOverRankings) {
  const std::vector<ModeratorId> expected{1, 2};
  const std::vector<vote::RankedList> rankings{
      {1, 2}, {2, 1}, {1, 9, 2}, {}};
  EXPECT_DOUBLE_EQ(correct_ordering_fraction(rankings, expected), 0.5);
  EXPECT_EQ(correct_ordering_fraction({}, expected), 0.0);
}

TEST(Pollution, TopEntryDetection) {
  EXPECT_TRUE(is_polluted({9, 1, 2}, 9));
  EXPECT_FALSE(is_polluted({1, 9}, 9));
  EXPECT_FALSE(is_polluted({}, 9));
}

TEST(Pollution, Fraction) {
  const std::vector<vote::RankedList> rankings{{9, 1}, {1, 9}, {9}, {}};
  EXPECT_DOUBLE_EQ(pollution_fraction(rankings, 9), 0.5);
}

TEST(TimeSeries, AddAndSize) {
  TimeSeries ts;
  ts.add(0, 1.0);
  ts.add(10, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.times[1], 10);
}

TEST(Aggregate, MeanAndStderrAcrossReplicas) {
  TimeSeries a, b, c;
  for (Time t : {0, 10, 20}) {
    a.add(t, 1.0);
    b.add(t, 2.0);
    c.add(t, 3.0);
  }
  const AggregateSeries agg = aggregate({a, b, c});
  ASSERT_EQ(agg.times.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(agg.mean[i], 2.0);
    EXPECT_NEAR(agg.stderr_mean[i], 1.0 / std::sqrt(3.0), 1e-12);
    EXPECT_DOUBLE_EQ(agg.min[i], 1.0);
    EXPECT_DOUBLE_EQ(agg.max[i], 3.0);
  }
}

TEST(Aggregate, ToleratesShorterReplicas) {
  TimeSeries full, partial;
  full.add(0, 1.0);
  full.add(10, 1.0);
  partial.add(0, 3.0);
  const AggregateSeries agg = aggregate({full, partial});
  ASSERT_EQ(agg.times.size(), 2u);
  EXPECT_DOUBLE_EQ(agg.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(agg.mean[1], 1.0);  // only the full replica reached t=10
}

TEST(Aggregate, EmptyInput) {
  EXPECT_TRUE(aggregate({}).times.empty());
  EXPECT_TRUE(aggregate({TimeSeries{}}).times.empty());
}

}  // namespace
}  // namespace tribvote::metrics
