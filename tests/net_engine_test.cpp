// Transport equivalence: ExchangeEngine vs the simulator oracle.
//
// Two pairs of agents are built from identical seeds — one pair driven by
// vote::vote_encounter / moderation::exchange (the sim path the figures
// run on), the other by two ExchangeEngines joined with an in-memory frame
// shuttle (the exact frames a TCP connection would carry). After each
// scenario the agents' state_digest() values must match pairwise: the wire
// protocol is a faithful re-encoding of the sim's call sequence, not a
// reimplementation that merely converges (DESIGN.md §13).
//
// Scenarios: cold full exchange, warm digest/delta, steady-state
// digest-only close, broken-digest fallback to full, PR 4 fault verdicts
// (digest-routed and delta-routed) with the sim's one-verdict-poisons-leg
// rule, VoxPopuli bootstrap, and a moderation push/pull.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>

#include "crypto/schnorr.hpp"
#include "moderation/moderationcast.hpp"
#include "net/codec.hpp"
#include "net/engine.hpp"
#include "vote/agent.hpp"
#include "vote/encounter.hpp"
#include "vote/gossip.hpp"

namespace tribvote::net {
namespace {

// ---- twin fixtures ---------------------------------------------------------

/// One node existing twice: `sim` runs the oracle path, `wire` the engine
/// path. Identical seeds mean identical keys, RNG streams and initial
/// state — any post-scenario digest mismatch is the transport's fault.
struct Twin {
  crypto::KeyPair keys;
  std::unique_ptr<vote::VoteAgent> sim;
  std::unique_ptr<vote::VoteAgent> wire;

  void cast(ModeratorId m, Opinion op, Time t) {
    sim->cast_vote(m, op, t);
    wire->cast_vote(m, op, t);
  }
};

Twin make_twin(PeerId id, std::uint64_t seed,
               vote::VoteConfig config = vote::VoteConfig{}) {
  Twin t;
  util::Rng krng(seed);
  t.keys = crypto::generate_keypair(krng);
  const auto exp = [](PeerId) { return true; };
  t.sim = std::make_unique<vote::VoteAgent>(id, t.keys, config, exp,
                                            util::Rng(seed * 7919 + 1));
  t.wire = std::make_unique<vote::VoteAgent>(id, t.keys, config, exp,
                                             util::Rng(seed * 7919 + 1));
  return t;
}

// ---- in-memory frame shuttle -----------------------------------------------

/// Ferries frames between two engines until both directions drain —
/// exactly what two NodeService ends do over TCP, minus the sockets.
/// `tamper_ab` (optional) rewrites frames travelling a → b, modelling the
/// fault plane's transit verdicts at the frame level.
struct Shuttle {
  ExchangeEngine* a;
  ExchangeEngine* b;
  std::function<void(Frame&)> tamper_ab;
  bool protocol_error = false;

  bool run(std::vector<Frame> from_a) {
    std::deque<Frame> to_b(from_a.begin(), from_a.end());
    std::deque<Frame> to_a;
    while (!to_a.empty() || !to_b.empty()) {
      std::vector<Frame> out;
      if (!to_b.empty()) {
        Frame f = to_b.front();
        to_b.pop_front();
        if (tamper_ab) tamper_ab(f);
        if (!b->on_frame(f, out)) {
          protocol_error = true;
          return false;
        }
        to_a.insert(to_a.end(), out.begin(), out.end());
      } else {
        Frame f = to_a.front();
        to_a.pop_front();
        if (!a->on_frame(f, out)) {
          protocol_error = true;
          return false;
        }
        to_b.insert(to_b.end(), out.begin(), out.end());
      }
    }
    return true;
  }
};

/// One wire vote encounter initiated by `a`.
void wire_encounter(ExchangeEngine& a, ExchangeEngine& b, Time now,
                    std::function<void(Frame&)> tamper_ab = nullptr) {
  Shuttle shuttle{&a, &b, std::move(tamper_ab)};
  std::vector<Frame> opening;
  ASSERT_TRUE(a.begin_vote_encounter(now, opening));
  ASSERT_TRUE(shuttle.run(std::move(opening)));
  EXPECT_TRUE(a.idle());
  EXPECT_TRUE(b.responder_idle());
}

/// The sim oracle for one encounter under a directed transit fault on the
/// forward leg — vote_encounter's exact body with gossip_send's fault
/// arguments exposed (vote::vote_encounter itself has no fault hook; the
/// runner's faulted path composes legs just like this).
void sim_encounter_faulted(vote::VoteAgent& initiator,
                           vote::VoteAgent& responder, Time now,
                           vote::WireFault fault, std::uint64_t salt) {
  (void)vote::gossip_send(initiator, responder, now, fault, salt);
  (void)vote::gossip_send(responder, initiator, now);
  if (initiator.bootstrapping()) {
    vote::RankedList topk = responder.answer_topk();
    if (!topk.empty()) initiator.receive_topk(std::move(topk));
  }
}

struct EnginePair {
  ExchangeEngine a;
  ExchangeEngine b;

  EnginePair(Twin& ta, Twin& tb,
             moderation::ModerationCastAgent* mod_a = nullptr,
             moderation::ModerationCastAgent* mod_b = nullptr)
      : a(*ta.wire, mod_a, 0), b(*tb.wire, mod_b, 1) {
    a.set_peer(tb.wire->self());
    b.set_peer(ta.wire->self());
  }
};

void expect_twins_match(const Twin& x, const Twin& y) {
  EXPECT_EQ(x.sim->state_digest(), x.wire->state_digest());
  EXPECT_EQ(y.sim->state_digest(), y.wire->state_digest());
}

// ---- scenarios -------------------------------------------------------------

TEST(NetEngine, ColdExchangeOpensFullAndMatchesOracle) {
  Twin a = make_twin(1, 21);
  Twin b = make_twin(2, 22);
  a.cast(10, Opinion::kPositive, 50);
  a.cast(11, Opinion::kNegative, 60);
  b.cast(10, Opinion::kPositive, 55);

  vote::vote_exchange(*a.sim, *b.sim, 100);
  EnginePair e(a, b);
  wire_encounter(e.a, e.b, 100);

  expect_twins_match(a, b);
  EXPECT_EQ(e.a.counters().encounters_completed, 1u);
  EXPECT_EQ(e.b.counters().encounters_served, 1u);
  EXPECT_EQ(e.a.counters().open_full, 1u);  // cold: no counterpart memory
  EXPECT_EQ(e.a.counters().open_digest, 0u);
  EXPECT_GE(e.b.counters().votes_accepted, 1u);
}

TEST(NetEngine, WarmExchangeUsesDigestDeltaAndMatchesOracle) {
  Twin a = make_twin(1, 31);
  Twin b = make_twin(2, 32);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);

  // New votes since the first exchange: the warm leg opens with a digest
  // and ships only the delta.
  a.cast(12, Opinion::kPositive, 150);
  b.cast(13, Opinion::kPositive, 160);
  vote::vote_exchange(*a.sim, *b.sim, 200);
  wire_encounter(e.a, e.b, 200);

  expect_twins_match(a, b);
  EXPECT_EQ(e.a.counters().open_digest, 1u);
  EXPECT_GE(e.b.counters().open_digest, 1u);
  EXPECT_EQ(e.a.counters().fallbacks_requested, 0u);
}

TEST(NetEngine, SteadyStateClosesOnDigestAloneAndMatchesOracle) {
  Twin a = make_twin(1, 41);
  Twin b = make_twin(2, 42);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);
  // Nothing changed: both legs are digest-only, nothing to request.
  vote::vote_exchange(*a.sim, *b.sim, 200);
  wire_encounter(e.a, e.b, 200);

  expect_twins_match(a, b);
  EXPECT_EQ(e.a.counters().open_digest, 1u);
  EXPECT_EQ(e.a.counters().votes_accepted, 2u);  // digest close still merges
}

TEST(NetEngine, BrokenDigestFallsBackToFullTransparently) {
  Twin a = make_twin(1, 51);
  Twin b = make_twin(2, 52);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);
  a.cast(12, Opinion::kPositive, 150);

  // Sim runs the clean exchange; the wire's forward digest is corrupted
  // above the CRC (valid frame, lying checksum). The fallback full
  // retransmit must land both twins in the same end state — the fallback
  // is semantically transparent, it only costs bytes.
  vote::vote_exchange(*a.sim, *b.sim, 200);
  wire_encounter(e.a, e.b, 200, [](Frame& f) {
    if (f.type != FrameType::kVoteDigest) return;
    vote::VoteDigestMessage d;
    ASSERT_TRUE(decode_vote_digest(f.payload, d));
    d.checksum ^= 1;
    f.payload = encode_vote_digest(d);
  });

  expect_twins_match(a, b);
  EXPECT_EQ(e.b.counters().fallbacks_requested, 1u);
  EXPECT_EQ(e.a.counters().fallbacks_served, 1u);
}

TEST(NetEngine, DigestRoutedFaultVerdictMatchesOracle) {
  Twin a = make_twin(1, 61);
  Twin b = make_twin(2, 62);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);
  a.cast(12, Opinion::kPositive, 150);

  // PR 4 verdict on the forward leg, salt-routed to the digest
  // ((salt >> 6) & 1 == 0). The sim poisons the whole leg: the fallback
  // full is damaged too and rejects wholesale. Mirror that on the wire by
  // damaging both frame kinds with the same (fault, salt).
  const std::uint64_t salt = 3;
  sim_encounter_faulted(*a.sim, *b.sim, 200, vote::WireFault::kCorrupted, salt);
  wire_encounter(e.a, e.b, 200, [salt](Frame& f) {
    if (f.type == FrameType::kVoteDigest) {
      vote::VoteDigestMessage d;
      ASSERT_TRUE(decode_vote_digest(f.payload, d));
      vote::damage_digest(d, vote::WireFault::kCorrupted, salt);
      f.payload = encode_vote_digest(d);
    } else if (f.type == FrameType::kVoteFull) {
      vote::VoteListMessage m;
      ASSERT_TRUE(decode_vote_full(f.payload, m));
      vote::damage_message(m, vote::WireFault::kCorrupted, salt);
      f.payload = encode_vote_full(m);
    }
  });

  expect_twins_match(a, b);
  EXPECT_EQ(e.b.counters().fallbacks_requested, 1u);
  EXPECT_EQ(e.b.counters().votes_rejected, 1u);  // same accounting as PR 4
}

TEST(NetEngine, DeltaRoutedFaultVerdictMatchesOracle) {
  Twin a = make_twin(1, 71);
  Twin b = make_twin(2, 72);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);
  a.cast(12, Opinion::kPositive, 150);  // ensures a non-empty delta

  const std::uint64_t salt = 64 + 5;  // bit 6 set: fault routes to the delta
  sim_encounter_faulted(*a.sim, *b.sim, 200, vote::WireFault::kCorrupted, salt);
  wire_encounter(e.a, e.b, 200, [salt](Frame& f) {
    if (f.type != FrameType::kVoteDelta) return;
    vote::VoteDeltaMessage d;
    ASSERT_TRUE(decode_vote_delta(f.payload, d));
    vote::damage_delta(d, vote::WireFault::kCorrupted, salt);
    f.payload = encode_vote_delta(d);
  });

  expect_twins_match(a, b);
  EXPECT_EQ(e.b.counters().votes_rejected, 1u);
  EXPECT_EQ(e.b.counters().fallbacks_requested, 0u);
}

TEST(NetEngine, VoxPopuliBootstrapMatchesOracle) {
  // Initiator stays bootstrapping (huge b_min); responder ranks from its
  // box after one unique voter (b_min = 1) — its top-K answer is non-null
  // on the second encounter and must merge identically on both paths.
  vote::VoteConfig boot;
  boot.b_min = 100;
  vote::VoteConfig ranked;
  ranked.b_min = 1;
  Twin a = make_twin(1, 81, boot);
  Twin b = make_twin(2, 82, ranked);
  a.cast(10, Opinion::kPositive, 50);
  b.cast(11, Opinion::kNegative, 55);

  EnginePair e(a, b);
  vote::vote_exchange(*a.sim, *b.sim, 100);
  wire_encounter(e.a, e.b, 100);
  vote::vote_exchange(*a.sim, *b.sim, 200);
  wire_encounter(e.a, e.b, 200);

  expect_twins_match(a, b);
  EXPECT_GE(e.a.counters().vox_answered, 1u);
  EXPECT_FALSE(a.wire->vox_cache().empty());
}

TEST(NetEngine, ModerationExchangeMatchesOracle) {
  Twin a = make_twin(1, 91);
  Twin b = make_twin(2, 92);

  const auto approve = [](ModeratorId) { return Opinion::kPositive; };
  moderation::ModerationCastConfig mc;
  moderation::ModerationCastAgent sim_a(1, a.keys, mc, approve,
                                        util::Rng(301));
  moderation::ModerationCastAgent wire_a(1, a.keys, mc, approve,
                                         util::Rng(301));
  moderation::ModerationCastAgent sim_b(2, b.keys, mc, approve,
                                        util::Rng(302));
  moderation::ModerationCastAgent wire_b(2, b.keys, mc, approve,
                                         util::Rng(302));

  std::vector<moderation::ModerationId> ids;
  for (int i = 0; i < 3; ++i) {
    const auto& m = sim_a.publish(0x1000u + static_cast<unsigned>(i),
                                  "torrent " + std::to_string(i), 50 + i);
    ids.push_back(m.digest());
    (void)wire_a.publish(0x1000u + static_cast<unsigned>(i),
                         "torrent " + std::to_string(i), 50 + i);
  }
  const auto& mb = sim_b.publish(0x2000u, "from b", 60);
  ids.push_back(mb.digest());
  (void)wire_b.publish(0x2000u, "from b", 60);

  (void)moderation::exchange(sim_a, sim_b, 100);

  EnginePair e(a, b, &wire_a, &wire_b);
  Shuttle shuttle{&e.a, &e.b, nullptr};
  std::vector<Frame> opening;
  ASSERT_TRUE(e.a.begin_moderation_encounter(100, opening));
  ASSERT_TRUE(shuttle.run(std::move(opening)));

  EXPECT_EQ(e.a.counters().mod_completed, 1u);
  EXPECT_EQ(e.b.counters().mod_served, 1u);
  EXPECT_EQ(sim_a.db().size(), wire_a.db().size());
  EXPECT_EQ(sim_b.db().size(), wire_b.db().size());
  for (const moderation::ModerationId id : ids) {
    EXPECT_EQ(sim_a.db().contains(id), wire_a.db().contains(id));
    EXPECT_EQ(sim_b.db().contains(id), wire_b.db().contains(id));
  }
}

TEST(NetEngine, RepeatedEncountersStayBitIdentical) {
  // Longer horizon: interleaved casts and encounters in both directions.
  // Any drift between the paths compounds — equality after 20 rounds is a
  // strong bit-identity check.
  Twin a = make_twin(1, 201);
  Twin b = make_twin(2, 202);
  EnginePair e(a, b);
  // b initiates on its own engine pair orientation: a fresh pair with b as
  // channel-0 initiator models b dialing a.
  for (int round = 0; round < 20; ++round) {
    const Time now = 1000 + 100 * round;
    if (round % 3 == 0) {
      a.cast(static_cast<ModeratorId>(10 + round),
             (round % 2 == 0) ? Opinion::kPositive : Opinion::kNegative,
             now - 10);
    }
    if (round % 4 == 0) {
      b.cast(static_cast<ModeratorId>(40 + round), Opinion::kPositive,
             now - 5);
    }
    vote::vote_exchange(*a.sim, *b.sim, now);
    wire_encounter(e.a, e.b, now);
    expect_twins_match(a, b);
  }
  EXPECT_EQ(e.a.counters().encounters_completed, 20u);
  EXPECT_EQ(e.b.counters().encounters_served, 20u);
  EXPECT_GT(e.a.counters().open_digest, 0u);
}

// ---- protocol-error handling -----------------------------------------------

TEST(NetEngine, OutOfStateFramesAreFatal) {
  Twin a = make_twin(1, 211);
  Twin b = make_twin(2, 212);
  EnginePair e(a, b);

  // A delta-request with no encounter open is a protocol error.
  Frame f;
  f.type = FrameType::kVoteDeltaRequest;
  f.channel = 0;
  f.payload = encode_delta_request({0});
  std::vector<Frame> out;
  EXPECT_FALSE(e.b.on_frame(f, out));
  EXPECT_EQ(e.b.counters().protocol_errors, 1u);
}

TEST(NetEngine, UndecodablePayloadIsFatal) {
  Twin a = make_twin(1, 221);
  Twin b = make_twin(2, 222);
  EnginePair e(a, b);

  Frame f;
  f.type = FrameType::kEncounterBegin;
  f.channel = 0;
  f.payload = {0xFF};  // not a valid ENC_BEGIN
  std::vector<Frame> out;
  EXPECT_FALSE(e.b.on_frame(f, out));
  EXPECT_EQ(e.b.counters().protocol_errors, 1u);
}

TEST(NetEngine, BeginWhileBusyRefusesLocally) {
  Twin a = make_twin(1, 231);
  Twin b = make_twin(2, 232);
  a.cast(10, Opinion::kPositive, 50);
  EnginePair e(a, b);

  std::vector<Frame> out;
  ASSERT_TRUE(e.a.begin_vote_encounter(100, out));
  EXPECT_FALSE(e.a.idle());
  std::vector<Frame> out2;
  EXPECT_FALSE(e.a.begin_vote_encounter(100, out2));  // still in flight
  EXPECT_TRUE(out2.empty());
}

}  // namespace
}  // namespace tribvote::net
