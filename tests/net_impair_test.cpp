// The transport chaos plane (DESIGN.md §16): spec parsing and the ge=L
// shorthand, verdict determinism and its segmentation invariance (the
// property that makes impaired runs bit-reproducible), the per-verdict
// byte semantics (drop/stall/truncate/corrupt/delay), the Gilbert–Elliott
// chain, the partition schedule's cross-node agreement, and the directory
// quarantine the deadline path feeds.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/impairment.hpp"
#include "util/rng.hpp"

namespace tribvote::net {
namespace {

// ---- spec parsing ----------------------------------------------------------

TEST(NetImpair, ParseFullSpecAndDescribe) {
  ImpairConfig c;
  std::string err;
  ASSERT_TRUE(parse_impair_spec(
      "loss=0.1,delay=0.2,max_delay_ms=55,corrupt=0.01,truncate=0.02,"
      "stall=0.005,part_period=64,part_width=8,part_frac=0.25",
      c, &err))
      << err;
  EXPECT_DOUBLE_EQ(c.loss, 0.1);
  EXPECT_DOUBLE_EQ(c.delay_rate, 0.2);
  EXPECT_EQ(c.max_delay_ms, 55);
  EXPECT_DOUBLE_EQ(c.corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(c.truncate_rate, 0.02);
  EXPECT_DOUBLE_EQ(c.stall_rate, 0.005);
  EXPECT_EQ(c.partition_period, 64u);
  EXPECT_EQ(c.partition_width, 8u);
  EXPECT_DOUBLE_EQ(c.partition_frac, 0.25);
  EXPECT_TRUE(c.enabled());
  EXPECT_NE(describe(c), "off");

  ImpairConfig off;
  ASSERT_TRUE(parse_impair_spec("off", off, &err));
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(describe(off), "off");
}

TEST(NetImpair, ParseRejectsUnknownKeysAndBadValues) {
  ImpairConfig c;
  std::string err;
  EXPECT_FALSE(parse_impair_spec("frobnicate=1", c, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_impair_spec("loss=1.5", c, &err));
  EXPECT_FALSE(parse_impair_spec("loss=-0.1", c, &err));
  EXPECT_FALSE(parse_impair_spec("part_width=0", c, &err));
  EXPECT_FALSE(parse_impair_spec("ge=0.9", c, &err));  // >= bad-state loss
}

TEST(NetImpair, GeShorthandHitsStationaryLossTarget) {
  for (const double target : {0.05, 0.1, 0.3, 0.5}) {
    ImpairConfig c;
    std::string err;
    char spec[16];
    std::snprintf(spec, sizeof spec, "ge=%g", target);
    ASSERT_TRUE(parse_impair_spec(spec, c, &err)) << err;
    ASSERT_GT(c.ge_good_to_bad, 0.0);
    // Stationary chunk loss of the two-state chain equals the axis value.
    const double pi =
        c.ge_good_to_bad / (c.ge_good_to_bad + c.ge_bad_to_good);
    const double avg = pi * c.ge_loss_bad + (1.0 - pi) * c.ge_loss_good;
    EXPECT_NEAR(avg, target, 1e-9);
  }
}

// ---- verdict engine helpers ------------------------------------------------

/// Concatenated payload bytes of every kDeliver / kDelay action.
std::vector<std::uint8_t> delivered(
    const std::vector<Impairment::Action>& actions) {
  std::vector<std::uint8_t> out;
  for (const auto& a : actions) {
    if (a.op == Impairment::Op::kDeliver || a.op == Impairment::Op::kDelay) {
      out.insert(out.end(), a.bytes.begin(), a.bytes.end());
    }
  }
  return out;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return data;
}

ImpairConfig mixed_config() {
  ImpairConfig c;
  std::string err;
  EXPECT_TRUE(parse_impair_spec(
      "loss=0.05,delay=0.2,max_delay_ms=30,corrupt=0.05,truncate=0.05,"
      "stall=0.02",
      c, &err))
      << err;
  return c;
}

// ---- determinism: the property the chaos-smoke CI job rests on -------------

TEST(NetImpair, VerdictsAreSegmentationInvariant) {
  const ImpairConfig c = mixed_config();
  const std::vector<std::uint8_t> data = pattern_bytes(8 * 512);

  // Instance A sees the stream in one recv(); instance B sees the same
  // stream byte by byte. Verdicts are keyed by stream *offset*, so both
  // must judge, damage and deliver identically.
  Impairment a(c, 99, 1);
  Impairment b(c, 99, 1);
  const std::uint64_t ka = a.open_stream();
  const std::uint64_t kb = b.open_stream();
  ASSERT_EQ(ka, kb);

  std::vector<Impairment::Action> out_a;
  a.ingest(ka, data.data(), data.size(), out_a);
  std::vector<Impairment::Action> out_b;
  for (std::size_t i = 0; i < data.size(); ++i) {
    b.ingest(kb, data.data() + i, 1, out_b);
  }

  EXPECT_EQ(delivered(out_a), delivered(out_b));
  EXPECT_EQ(a.stats().chunks, b.stats().chunks);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().delayed, b.stats().delayed);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().truncated, b.stats().truncated);
  EXPECT_EQ(a.stats().stalled, b.stats().stalled);
}

TEST(NetImpair, SameSeedSameConnectionOrderSameVerdicts) {
  const ImpairConfig c = mixed_config();
  const std::vector<std::uint8_t> data = pattern_bytes(4 * 512);

  Impairment a(c, 7, 1);
  Impairment b(c, 7, 1);
  for (int stream = 0; stream < 4; ++stream) {
    const std::uint64_t ka = a.open_stream();
    const std::uint64_t kb = b.open_stream();
    std::vector<Impairment::Action> out_a, out_b;
    a.ingest(ka, data.data(), data.size(), out_a);
    b.ingest(kb, data.data(), data.size(), out_b);
    EXPECT_EQ(delivered(out_a), delivered(out_b)) << "stream " << stream;
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].op, out_b[i].op);
      EXPECT_EQ(out_a[i].delay_ms, out_b[i].delay_ms);
    }
  }
  EXPECT_EQ(a.stats().chunks, b.stats().chunks);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
}

// ---- per-verdict byte semantics --------------------------------------------

TEST(NetImpair, DropResetsAndKillsTheStream) {
  ImpairConfig c;
  c.loss = 1.0;
  Impairment imp(c, 1, 1);
  const std::uint64_t key = imp.open_stream();
  const std::vector<std::uint8_t> data = pattern_bytes(16);
  std::vector<Impairment::Action> out;
  imp.ingest(key, data.data(), data.size(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, Impairment::Op::kReset);
  EXPECT_EQ(imp.stats().dropped, 1u);

  out.clear();  // a dead stream swallows everything after the reset
  imp.ingest(key, data.data(), data.size(), out);
  EXPECT_TRUE(out.empty());
}

TEST(NetImpair, StallSilencesTheStreamForGood) {
  ImpairConfig c;
  c.stall_rate = 1.0;
  Impairment imp(c, 1, 1);
  const std::uint64_t key = imp.open_stream();
  const std::vector<std::uint8_t> data = pattern_bytes(16);
  std::vector<Impairment::Action> out;
  imp.ingest(key, data.data(), data.size(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, Impairment::Op::kStall);  // socket stays open
  EXPECT_EQ(imp.stats().stalled, 1u);

  out.clear();  // half-open: later bytes vanish silently, no reset
  imp.ingest(key, data.data(), data.size(), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(imp.stats().stalled, 1u);
}

TEST(NetImpair, TruncateDeliversAPrefixThenResets) {
  ImpairConfig c;
  c.truncate_rate = 1.0;
  Impairment imp(c, 5, 1);
  const std::uint64_t key = imp.open_stream();
  const std::vector<std::uint8_t> data = pattern_bytes(512);
  std::vector<Impairment::Action> out;
  imp.ingest(key, data.data(), data.size(), out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().op, Impairment::Op::kReset);
  const std::vector<std::uint8_t> prefix = delivered(out);
  EXPECT_LT(prefix.size(), data.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], data[i]);  // undamaged prefix, then the cut
  }
  EXPECT_EQ(imp.stats().truncated, 1u);
}

TEST(NetImpair, CorruptFlipsExactlyOneBitPerChunk) {
  ImpairConfig c;
  c.corrupt_rate = 1.0;
  Impairment imp(c, 3, 1);
  const std::uint64_t key = imp.open_stream();
  const std::vector<std::uint8_t> data = pattern_bytes(2 * 512);
  std::vector<Impairment::Action> out;
  imp.ingest(key, data.data(), data.size(), out);
  const std::vector<std::uint8_t> got = delivered(out);
  ASSERT_EQ(got.size(), data.size());
  std::size_t flipped_bits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(got[i] ^ data[i]);
    while (diff != 0) {
      flipped_bits += diff & 1u;
      diff >>= 1u;
    }
  }
  EXPECT_EQ(flipped_bits, 2u);  // one bit per 512-byte chunk
  EXPECT_EQ(imp.stats().corrupted, 2u);
}

TEST(NetImpair, UnknownStreamPassesThrough) {
  Impairment imp(mixed_config(), 1, 1);
  const std::vector<std::uint8_t> data = pattern_bytes(64);
  std::vector<Impairment::Action> out;
  imp.ingest(424242, data.data(), data.size(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, Impairment::Op::kDeliver);
  EXPECT_EQ(out[0].bytes, data);
  EXPECT_EQ(imp.stats().chunks, 0u);  // no verdicts drawn
}

// ---- Gilbert–Elliott chain -------------------------------------------------

TEST(NetImpair, GeChainLosesInBurstsNearTheStationaryRate) {
  ImpairConfig c;
  std::string err;
  ASSERT_TRUE(parse_impair_spec("ge=0.3", c, &err)) << err;
  Impairment imp(c, 11, 1);

  // Each stream dies at its first dropped chunk, so walk many streams and
  // accumulate chunk verdicts until the law of large numbers can speak.
  const std::vector<std::uint8_t> data = pattern_bytes(64 * 512);
  std::uint64_t last_chunks = 0;
  while (imp.stats().chunks < 20000) {
    const std::uint64_t key = imp.open_stream();
    std::vector<Impairment::Action> out;
    imp.ingest(key, data.data(), data.size(), out);
    ASSERT_GT(imp.stats().chunks, last_chunks);  // forward progress
    last_chunks = imp.stats().chunks;
  }
  EXPECT_GT(imp.stats().ge_bad_chunks, 0u);
  EXPECT_LT(imp.stats().ge_bad_chunks, imp.stats().chunks);
  const double rate = static_cast<double>(imp.stats().dropped) /
                      static_cast<double>(imp.stats().chunks);
  // Censored sampling (every stream starts in the good state and ends on
  // its first drop) biases the observed rate below the 0.3 stationary
  // target; just pin a generous band around the mechanism.
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.5);
}

// ---- partition schedule ----------------------------------------------------

TEST(NetImpair, PartitionScheduleAgreesAcrossNodesAndSparesBootstrap) {
  ImpairConfig c;
  std::string err;
  ASSERT_TRUE(
      parse_impair_spec("part_period=8,part_width=2,part_frac=0.5", c, &err))
      << err;
  Impairment a(c, 77, 1);  // two different nodes, same cluster seed
  Impairment b(c, 77, 2);

  std::size_t offline_seen = 0, online_seen = 0;
  for (std::uint64_t round = 0; round < 64; ++round) {
    a.set_round(round);
    b.set_round(round);
    for (PeerId p = 1; p <= 16; ++p) {
      EXPECT_EQ(a.offline(p), b.offline(p))
          << "round " << round << " peer " << p;
      if (round < 8) {
        // Never inside the first period: bootstrap is protected.
        EXPECT_FALSE(a.offline(p));
      }
      if (a.offline(p)) {
        ++offline_seen;
      } else {
        ++online_seen;
      }
    }
    if (round % 8 >= 2) {  // outside the window nobody is offline
      for (PeerId p = 1; p <= 16; ++p) EXPECT_FALSE(a.offline(p));
    }
  }
  EXPECT_GT(offline_seen, 0u);
  EXPECT_GT(online_seen, offline_seen);
  EXPECT_TRUE(a.self_offline() == a.offline(1));
}

}  // namespace
}  // namespace tribvote::net
