// Ledger backend tests (bt/ledger.hpp).
//
// Three layers:
//   * LedgerEquivalence — property tests: random transfer streams must read
//     back *bit-identically* from MapLedger and ShardedLogLedger, with
//     queries interleaved mid-stream (i.e. against uncompacted log tails)
//     and across forced compactions at tiny thresholds.
//   * ShardedLogLedger unit behaviour — compaction triggers, flush, stats.
//   * LedgerShardStress — concurrent per-lane sink appends (plus readers
//     racing the buffered writes) merged at a barrier must equal a serial
//     replay; run under TSan in CI.
//   * Runner-level: a full scenario run produces the same accounting and
//     stats on both backends, at shard counts 1 and 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "bt/ledger.hpp"
#include "bt/sharded_log_ledger.hpp"
#include "bt/transfer_ledger.hpp"
#include "core/runner.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace tribvote::bt {
namespace {

/// Canonical form of a direct view: sorted records (order is
/// backend-defined, content must match exactly).
std::vector<TransferRecord> canonical(std::vector<TransferRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TransferRecord& a, const TransferRecord& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return records;
}

/// Every observable of the two views must agree to the last bit.
void expect_identical(const LedgerView& a, const LedgerView& b,
                      std::size_t n) {
  ASSERT_EQ(a.peer_count(), n);
  ASSERT_EQ(b.peer_count(), n);
  for (PeerId p = 0; p < n; ++p) {
    EXPECT_EQ(a.total_uploaded_mb(p), b.total_uploaded_mb(p)) << "peer " << p;
    EXPECT_EQ(a.total_downloaded_mb(p), b.total_downloaded_mb(p))
        << "peer " << p;
    EXPECT_EQ(a.version(p), b.version(p)) << "peer " << p;
    const auto va = canonical(a.direct_view(p));
    const auto vb = canonical(b.direct_view(p));
    ASSERT_EQ(va.size(), vb.size()) << "peer " << p;
    for (std::size_t k = 0; k < va.size(); ++k) {
      EXPECT_EQ(va[k].from, vb[k].from);
      EXPECT_EQ(va[k].to, vb[k].to);
      EXPECT_EQ(va[k].mb, vb[k].mb)
          << "peer " << p << " record " << k << " (" << va[k].from << "->"
          << va[k].to << ")";
    }
  }
  for (PeerId from = 0; from < n; ++from) {
    for (PeerId to = 0; to < n; ++to) {
      EXPECT_EQ(a.uploaded_mb(from, to), b.uploaded_mb(from, to))
          << from << "->" << to;
    }
  }
}

class LedgerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerEquivalence, RandomStreamReadsBackIdentically) {
  constexpr std::size_t kPeers = 48;
  constexpr std::size_t kTransfers = 4000;
  util::Rng rng(GetParam());
  MapLedger map(kPeers);
  // Tiny threshold: the stream crosses many compaction boundaries, so
  // queries hit every mix of compacted rows and pending log tails.
  ShardedLogLedger sharded(kPeers, /*shards=*/4, /*compact_threshold=*/64);
  for (std::size_t t = 0; t < kTransfers; ++t) {
    const auto from = static_cast<PeerId>(rng.next_below(kPeers));
    auto to = static_cast<PeerId>(rng.next_below(kPeers));
    if (to == from) to = (to + 1) % kPeers;
    // Skewed pairs so the same pair accumulates repeatedly (the FP
    // order-sensitivity the bit-identity argument is about).
    const double bytes = rng.next_bool(0.5)
                             ? rng.next_double(1.0, 50.0) * 1024 * 1024
                             : rng.next_double(0.0, 1.0) * 1024;
    map.add_transfer(from, to, bytes);
    sharded.add_transfer(from, to, bytes);
    // Interleaved spot checks against the uncompacted tail.
    if (t % 97 == 0) {
      const auto p = static_cast<PeerId>(rng.next_below(kPeers));
      EXPECT_EQ(map.total_uploaded_mb(p), sharded.total_uploaded_mb(p));
      EXPECT_EQ(map.uploaded_mb(from, to), sharded.uploaded_mb(from, to));
      EXPECT_EQ(map.version(p), sharded.version(p));
    }
  }
  // Mid-stream full sweep with pending entries outstanding...
  expect_identical(map, sharded, kPeers);
  EXPECT_GT(sharded.stats().compactions, 0u);
  // ...and again after everything is compacted.
  sharded.flush();
  EXPECT_EQ(sharded.pending_entries(), 0u);
  expect_identical(map, sharded, kPeers);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerEquivalence,
                         ::testing::Values(1u, 7u, 42u, 20090525u));

TEST(LedgerEquivalence, ShardCountDoesNotChangeReads) {
  constexpr std::size_t kPeers = 32;
  util::Rng rng(11);
  ShardedLogLedger one(kPeers, 1, 128);
  ShardedLogLedger four(kPeers, 4, 128);
  ShardedLogLedger many(kPeers, 64, 128);  // more shards than busy peers
  for (std::size_t t = 0; t < 2000; ++t) {
    const auto from = static_cast<PeerId>(rng.next_below(kPeers));
    auto to = static_cast<PeerId>(rng.next_below(kPeers));
    if (to == from) to = (to + 1) % kPeers;
    const double bytes = rng.next_double(0.1, 10.0) * 1024 * 1024;
    one.add_transfer(from, to, bytes);
    four.add_transfer(from, to, bytes);
    many.add_transfer(from, to, bytes);
  }
  expect_identical(one, four, kPeers);
  expect_identical(one, many, kPeers);
}

TEST(ShardedLogLedger, CompactsAtThresholdAndOnFlush) {
  ShardedLogLedger ledger(8, /*shards=*/2, /*compact_threshold=*/4);
  // Peers 0 and 2 share shard 0: four appends to shard 0 trigger a compact.
  ledger.add_transfer(0, 2, 100.0);  // shard0: 2 entries
  EXPECT_EQ(ledger.pending_entries(), 2u);
  ledger.add_transfer(2, 0, 50.0);  // shard0 hits 4 -> compacts
  EXPECT_EQ(ledger.pending_entries(), 0u);
  EXPECT_EQ(ledger.stats().compactions, 1u);
  EXPECT_EQ(ledger.stats().compacted_entries, 4u);

  ledger.add_transfer(1, 3, 10.0);  // shard1: 2 entries, below threshold
  EXPECT_EQ(ledger.pending_entries(), 2u);
  ledger.flush();
  EXPECT_EQ(ledger.pending_entries(), 0u);
  EXPECT_EQ(ledger.stats().compactions, 2u);
  ledger.flush();  // clean flush is free
  EXPECT_EQ(ledger.stats().compactions, 2u);
  EXPECT_EQ(ledger.uploaded_mb(0, 2) * 1024 * 1024, 100.0);
  EXPECT_EQ(ledger.version(0), 2u);  // one up, one down entry
}

TEST(ShardedLogLedger, FactoryAndBackendNames) {
  const auto map = make_ledger(LedgerBackend::kMap, 4);
  const auto log = make_ledger(LedgerBackend::kShardedLog, 4, 2);
  map->add_transfer(0, 1, 1024.0);
  log->add_transfer(0, 1, 1024.0);
  EXPECT_EQ(map->uploaded_mb(0, 1), log->uploaded_mb(0, 1));
  EXPECT_NE(dynamic_cast<ShardedLogLedger*>(log.get()), nullptr);
  EXPECT_NE(dynamic_cast<MapLedger*>(map.get()), nullptr);
  EXPECT_STREQ(ledger_backend_name(LedgerBackend::kMap), "map");
  EXPECT_STREQ(ledger_backend_name(LedgerBackend::kShardedLog),
               "sharded_log");
  EXPECT_EQ(parse_ledger_backend("map"), LedgerBackend::kMap);
  EXPECT_EQ(parse_ledger_backend("sharded_log"), LedgerBackend::kShardedLog);
  EXPECT_EQ(parse_ledger_backend("bogus"), std::nullopt);
}

/// Concurrent lane-local appends, with readers racing the buffered writes,
/// then a serial merge — the shard-concurrency contract of the backend.
/// The reference is a serial replay in (lane, append order), which is what
/// merge_sinks() promises. Run under TSan in CI.
TEST(LedgerShardStress, ConcurrentSinkAppendsMatchSerialReplay) {
  constexpr std::size_t kPeers = 64;
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kPerLane = 5000;
  constexpr int kRounds = 3;

  ShardedLogLedger sharded(kPeers, kLanes, /*compact_threshold=*/256);
  MapLedger reference(kPeers);

  // Deterministic per-lane transfer streams (cross-shard pairs included:
  // a lane may append about any pair, buffering makes it safe).
  struct Xfer {
    PeerId from, to;
    double bytes;
  };
  std::vector<std::vector<Xfer>> streams(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    util::Rng rng(900 + lane);
    for (std::size_t i = 0; i < kPerLane; ++i) {
      const auto from = static_cast<PeerId>(rng.next_below(kPeers));
      auto to = static_cast<PeerId>(rng.next_below(kPeers));
      if (to == from) to = (to + 1) % kPeers;
      streams[lane].push_back(
          Xfer{from, to, rng.next_double(0.1, 5.0) * 1024 * 1024});
    }
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> workers;
    workers.reserve(kLanes + 1);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      workers.emplace_back([&, lane] {
        LedgerSink& sink = sharded.sink(lane);
        for (const Xfer& x : streams[lane]) {
          sink.add_transfer(x.from, x.to, x.bytes);
        }
      });
    }
    // A reader racing the buffered appends: sink buffers are lane-local,
    // so queries must see exactly the pre-round state, data-race free.
    workers.emplace_back([&] {
      double sum = 0;
      for (PeerId p = 0; p < kPeers; ++p) {
        sum += sharded.total_uploaded_mb(p);
        sum += static_cast<double>(sharded.direct_view(p).size());
      }
      EXPECT_GE(sum, 0.0);
    });
    for (auto& w : workers) w.join();

    sharded.merge_sinks();  // the barrier step
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      for (const Xfer& x : streams[lane]) {
        reference.add_transfer(x.from, x.to, x.bytes);
      }
    }
    expect_identical(reference, sharded, kPeers);
  }
  EXPECT_EQ(sharded.stats().sink_merges, static_cast<std::uint64_t>(kRounds));
}

/// Full-stack equivalence: a scenario run's accounting and protocol stats
/// must not depend on the ledger backend, at any shard count.
TEST(LedgerShardStress, RunnerBackendsProduceIdenticalRuns) {
  trace::GeneratorParams params;
  params.n_peers = 20;
  params.n_swarms = 3;
  params.duration = kDay;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  const trace::Trace tr = trace::generate_trace(params, 5);

  core::ScenarioConfig base;
  std::vector<const core::ScenarioRunner*> runners;
  std::vector<std::unique_ptr<core::ScenarioRunner>> owned;
  for (const auto backend :
       {LedgerBackend::kMap, LedgerBackend::kShardedLog}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      core::ScenarioConfig config = base;
      config.ledger = backend;
      config.shards = shards;
      owned.push_back(std::make_unique<core::ScenarioRunner>(tr, config, 42));
      owned.back()->run_until(tr.duration);
      runners.push_back(owned.back().get());
    }
  }
  const core::ScenarioRunner& ref = *runners.front();
  for (std::size_t r = 1; r < runners.size(); ++r) {
    const core::ScenarioRunner& other = *runners[r];
    EXPECT_EQ(ref.stats().downloads_completed,
              other.stats().downloads_completed);
    EXPECT_EQ(ref.stats().vote_exchanges, other.stats().vote_exchanges);
    EXPECT_EQ(ref.stats().votes_accepted, other.stats().votes_accepted);
    EXPECT_EQ(ref.stats().barter_exchanges, other.stats().barter_exchanges);
    expect_identical(ref.ledger(), other.ledger(), tr.peers.size());
    EXPECT_EQ(ref.collective_experience(5.0), other.collective_experience(5.0));
  }
}

}  // namespace
}  // namespace tribvote::bt
