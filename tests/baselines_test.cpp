#include <gtest/gtest.h>

#include "baselines/credence.hpp"
#include "baselines/pushsum.hpp"
#include "util/rng.hpp"

#include <memory>
#include <vector>

namespace tribvote::baselines {
namespace {

// ---- push-sum aggregation ----------------------------------------------------

TEST(PushSum, SingleNodeEstimatesOwnValue) {
  PushSumNode node(3.5);
  EXPECT_DOUBLE_EQ(node.estimate(), 3.5);
}

TEST(PushSum, PairConvergesToAverage) {
  PushSumNode a(1.0), b(3.0);
  for (int round = 0; round < 40; ++round) {
    b.absorb(a.emit());
    a.absorb(b.emit());
  }
  EXPECT_NEAR(a.estimate(), 2.0, 1e-6);
  EXPECT_NEAR(b.estimate(), 2.0, 1e-6);
}

TEST(PushSum, PopulationConvergesToAverage) {
  util::Rng rng(1);
  std::vector<PushSumNode> nodes;
  double truth = 0;
  constexpr int kN = 30;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_double(-1, 1);
    truth += v;
    nodes.emplace_back(v);
  }
  truth /= kN;
  for (int round = 0; round < 3000; ++round) {
    const auto i = rng.next_below(kN);
    auto j = rng.next_below(kN);
    while (j == i) j = rng.next_below(kN);
    nodes[j].absorb(nodes[i].emit());
    nodes[i].absorb(nodes[j].emit());
  }
  for (const auto& node : nodes) {
    EXPECT_NEAR(node.estimate(), truth, 0.02);
  }
}

TEST(PushSum, MassConservation) {
  // Total (sum, weight) is invariant under honest exchanges.
  PushSumNode a(5.0), b(-1.0), c(2.0);
  auto total_weight = [&] { return a.weight() + b.weight() + c.weight(); };
  EXPECT_DOUBLE_EQ(total_weight(), 3.0);
  b.absorb(a.emit());
  c.absorb(b.emit());
  a.absorb(c.emit());
  EXPECT_NEAR(total_weight(), 3.0, 1e-12);
}

TEST(PushSum, SingleLiarDragsEveryEstimate) {
  // 29 honest nodes with value 0; one liar pushing +1 with modest mass.
  util::Rng rng(2);
  std::vector<std::unique_ptr<PushSumNode>> nodes;
  constexpr std::size_t kN = 30;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    nodes.push_back(std::make_unique<PushSumNode>(0.0));
  }
  nodes.push_back(
      std::make_unique<LyingPushSumNode>(0.0, /*target=*/1.0, /*mass=*/1.0));
  for (int round = 0; round < 600; ++round) {
    const auto i = rng.next_below(kN);
    auto j = rng.next_below(kN);
    while (j == i) j = rng.next_below(kN);
    nodes[j]->absorb(nodes[i]->emit());
  }
  // True average of actual votes is 0, but estimates are dragged toward 1.
  double worst = 0;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    worst = std::max(worst, nodes[i]->estimate());
  }
  EXPECT_GT(worst, 0.5) << "a single liar should dominate push-sum";
}

// ---- Credence -----------------------------------------------------------------

TEST(Credence, CorrelationRequiresOverlap) {
  CredencePeer alice(0, CredenceConfig{});
  alice.cast(1, Opinion::kPositive);
  alice.observe(1, {{1, Opinion::kPositive}});
  // Only one co-voted object < min_overlap (2).
  EXPECT_FALSE(alice.correlation_with(1).has_value());
  alice.cast(2, Opinion::kNegative);
  alice.observe(1, {{2, Opinion::kNegative}});
  const auto theta = alice.correlation_with(1);
  ASSERT_TRUE(theta.has_value());
  EXPECT_DOUBLE_EQ(*theta, 1.0);
}

TEST(Credence, DisagreementGivesNegativeCorrelation) {
  CredencePeer alice(0, CredenceConfig{});
  alice.cast(1, Opinion::kPositive);
  alice.cast(2, Opinion::kPositive);
  alice.observe(1, {{1, Opinion::kNegative}, {2, Opinion::kNegative}});
  const auto theta = alice.correlation_with(1);
  ASSERT_TRUE(theta.has_value());
  EXPECT_DOUBLE_EQ(*theta, -1.0);
}

TEST(Credence, EstimateWeighsCorrelatedPeers) {
  CredencePeer alice(0, CredenceConfig{});
  alice.cast(1, Opinion::kPositive);
  alice.cast(2, Opinion::kPositive);
  // Peer 1 agrees with alice historically, peer 2 disagrees.
  alice.observe(1, {{1, Opinion::kPositive},
                    {2, Opinion::kPositive},
                    {9, Opinion::kPositive}});
  alice.observe(2, {{1, Opinion::kNegative},
                    {2, Opinion::kNegative},
                    {9, Opinion::kPositive}});
  // Object 9: correlated peer says +, anti-correlated peer says + (which
  // counts as evidence of the opposite).
  const auto estimate = alice.estimate(9);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 0.0, 1e-12);  // +1·1 and -1·1 cancel
}

TEST(Credence, OwnVoteAlwaysCounts) {
  CredencePeer alice(0, CredenceConfig{});
  alice.cast(5, Opinion::kNegative);
  const auto estimate = alice.estimate(5);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(*estimate, -1.0);
}

TEST(Credence, NonVoterIsIsolated) {
  // The paper's §VIII criticism: a peer that never votes has no
  // correlations, hence no way to evaluate anything.
  CredencePeer lurker(0, CredenceConfig{});
  lurker.observe(1, {{1, Opinion::kPositive}, {2, Opinion::kPositive}});
  lurker.observe(2, {{1, Opinion::kNegative}, {2, Opinion::kNegative}});
  EXPECT_TRUE(lurker.isolated());
  EXPECT_FALSE(lurker.estimate(1).has_value());
}

TEST(Credence, VoterIsNotIsolated) {
  CredencePeer voter(0, CredenceConfig{});
  voter.cast(1, Opinion::kPositive);
  voter.cast(2, Opinion::kPositive);
  voter.observe(1, {{1, Opinion::kPositive}, {2, Opinion::kPositive}});
  EXPECT_FALSE(voter.isolated());
  // And can now evaluate an object it never saw, via peer 1.
  voter.observe(1, {{7, Opinion::kNegative}});
  const auto estimate = voter.estimate(7);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(*estimate, 0.0);
}

TEST(Credence, NoneVotesIgnored) {
  CredencePeer alice(0, CredenceConfig{});
  alice.cast(1, Opinion::kNone);
  EXPECT_EQ(alice.own_vote_count(), 0u);
  alice.observe(1, {{1, Opinion::kNone}});
  EXPECT_FALSE(alice.correlation_with(1).has_value());
}

}  // namespace
}  // namespace tribvote::baselines
