#include "bt/choker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bt/bandwidth.hpp"

namespace tribvote::bt {
namespace {

std::vector<ChokeCandidate> make_candidates(
    std::initializer_list<std::pair<PeerId, double>> list) {
  std::vector<ChokeCandidate> out;
  for (const auto& [peer, score] : list) {
    out.push_back(ChokeCandidate{peer, score});
  }
  return out;
}

TEST(Choker, EmptyCandidates) {
  Choker choker;
  util::Rng rng(1);
  EXPECT_TRUE(choker.select({}, rng).empty());
}

TEST(Choker, SelectsTopReciprocators) {
  Choker choker(ChokerConfig{2, 0, 3});
  util::Rng rng(1);
  const auto unchoked = choker.select(
      make_candidates({{1, 10.0}, {2, 50.0}, {3, 30.0}, {4, 5.0}}), rng);
  ASSERT_EQ(unchoked.size(), 2u);
  EXPECT_EQ(unchoked[0], 2u);
  EXPECT_EQ(unchoked[1], 3u);
}

TEST(Choker, TieBreaksByPeerId) {
  Choker choker(ChokerConfig{2, 0, 3});
  util::Rng rng(1);
  const auto unchoked = choker.select(
      make_candidates({{9, 10.0}, {3, 10.0}, {5, 10.0}}), rng);
  ASSERT_EQ(unchoked.size(), 2u);
  EXPECT_EQ(unchoked[0], 3u);
  EXPECT_EQ(unchoked[1], 5u);
}

TEST(Choker, OptimisticSlotAddsOneOutsideRegularSet) {
  Choker choker(ChokerConfig{2, 1, 3});
  util::Rng rng(1);
  const auto unchoked = choker.select(
      make_candidates({{1, 40.0}, {2, 30.0}, {3, 1.0}, {4, 2.0}}), rng);
  ASSERT_EQ(unchoked.size(), 3u);
  EXPECT_EQ(unchoked[0], 1u);
  EXPECT_EQ(unchoked[1], 2u);
  EXPECT_TRUE(unchoked[2] == 3u || unchoked[2] == 4u);
}

TEST(Choker, FewerCandidatesThanSlots) {
  Choker choker(ChokerConfig{3, 1, 3});
  util::Rng rng(1);
  const auto unchoked = choker.select(make_candidates({{7, 1.0}}), rng);
  ASSERT_EQ(unchoked.size(), 1u);
  EXPECT_EQ(unchoked[0], 7u);
}

TEST(Choker, OptimisticTargetIsSticky) {
  Choker choker(ChokerConfig{1, 1, 4});
  util::Rng rng(2);
  const auto candidates =
      make_candidates({{1, 100.0}, {2, 0.0}, {3, 0.0}, {4, 0.0}});
  const auto first = choker.select(candidates, rng);
  ASSERT_EQ(first.size(), 2u);
  const PeerId target = first[1];
  // For the next (period - 1) rounds the optimistic pick stays put.
  for (int round = 0; round < 2; ++round) {
    const auto next = choker.select(candidates, rng);
    ASSERT_EQ(next.size(), 2u);
    EXPECT_EQ(next[1], target) << "round " << round;
  }
}

TEST(Choker, OptimisticTargetRotatesEventually) {
  Choker choker(ChokerConfig{1, 1, 2});
  util::Rng rng(3);
  const auto candidates = make_candidates(
      {{1, 100.0}, {2, 0.0}, {3, 0.0}, {4, 0.0}, {5, 0.0}});
  std::set<PeerId> targets;
  for (int round = 0; round < 40; ++round) {
    const auto unchoked = choker.select(candidates, rng);
    ASSERT_EQ(unchoked.size(), 2u);
    targets.insert(unchoked[1]);
  }
  EXPECT_GT(targets.size(), 1u);  // rotation happened
}

TEST(Choker, NoOptimisticWhenAllCandidatesAreRegular) {
  Choker choker(ChokerConfig{3, 1, 3});
  util::Rng rng(4);
  const auto unchoked =
      choker.select(make_candidates({{1, 3.0}, {2, 2.0}, {3, 1.0}}), rng);
  EXPECT_EQ(unchoked.size(), 3u);  // nothing left for the optimistic slot
}

TEST(Choker, ZeroOptimisticSlots) {
  Choker choker(ChokerConfig{2, 0, 3});
  util::Rng rng(5);
  const auto unchoked = choker.select(
      make_candidates({{1, 3.0}, {2, 2.0}, {3, 1.0}, {4, 0.5}}), rng);
  EXPECT_EQ(unchoked.size(), 2u);
}

TEST(Choker, NeverDuplicatesPeers) {
  Choker choker;
  util::Rng rng(6);
  for (int round = 0; round < 50; ++round) {
    const auto unchoked = choker.select(
        make_candidates(
            {{1, 5.0}, {2, 4.0}, {3, 3.0}, {4, 2.0}, {5, 1.0}, {6, 0.0}}),
        rng);
    std::set<PeerId> unique(unchoked.begin(), unchoked.end());
    EXPECT_EQ(unique.size(), unchoked.size());
  }
}

TEST(Bandwidth, SharesSplitAcrossSwarms) {
  BandwidthAllocator alloc({100.0, 50.0}, {800.0, 400.0});
  EXPECT_EQ(alloc.upload_share_bytes(0, 10.0), 0.0);  // inactive
  alloc.register_active(0);
  EXPECT_DOUBLE_EQ(alloc.upload_share_bytes(0, 10.0), 100.0 * 1024 * 10);
  alloc.register_active(0);
  EXPECT_DOUBLE_EQ(alloc.upload_share_bytes(0, 10.0),
                   100.0 * 1024 * 10 / 2);
  EXPECT_DOUBLE_EQ(alloc.download_share_bytes(0, 10.0),
                   800.0 * 1024 * 10 / 2);
  alloc.unregister_active(0);
  EXPECT_DOUBLE_EQ(alloc.upload_share_bytes(0, 10.0), 100.0 * 1024 * 10);
  EXPECT_EQ(alloc.active_swarms(1), 0u);
}

}  // namespace
}  // namespace tribvote::bt
