#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tribvote::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
  // sample var 32/7.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-5, 5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, ClampsQ) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
}

TEST(KendallTau, PerfectAgreement) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), -1.0);
}

TEST(KendallTau, KnownPartialValue) {
  // a: 1 2 3; b: 1 3 2 -> pairs: (1,2)C (1,3)C (2,3)D -> tau = 1/3.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 3, 2};
  EXPECT_NEAR(kendall_tau(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KendallTau, AllTiedReturnsZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{2, 2, 2};
  EXPECT_EQ(kendall_tau(a, b), 0.0);
}

TEST(KendallTau, TauBHandlesTies) {
  // a has a tie; tau-b should be within (-1, 1) and positive here.
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{1, 2, 3, 4};
  const double tau = kendall_tau(a, b);
  EXPECT_GT(tau, 0.8);
  EXPECT_LT(tau, 1.0);
}

TEST(Ci95, ZeroForSmallSamples) {
  RunningStats s;
  EXPECT_EQ(ci95_halfwidth(s), 0.0);
  s.add(1.0);
  EXPECT_EQ(ci95_halfwidth(s), 0.0);
}

TEST(Ci95, MatchesFormula) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(ci95_halfwidth(s), 1.96 * s.stddev() / 2.0, 1e-12);
}

}  // namespace
}  // namespace tribvote::util
