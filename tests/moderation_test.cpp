#include <gtest/gtest.h>

#include <map>

#include "moderation/db.hpp"
#include "moderation/moderation.hpp"
#include "moderation/moderationcast.hpp"

namespace tribvote::moderation {
namespace {

crypto::KeyPair make_keys(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(rng);
}

TEST(Moderation, SignAndVerify) {
  util::Rng rng(1);
  const crypto::KeyPair keys = make_keys(1);
  const Moderation m =
      make_moderation(3, keys, 0xabc, "great movie", 100, rng);
  EXPECT_TRUE(verify_moderation(m));
  EXPECT_EQ(m.moderator, 3u);
  EXPECT_EQ(m.created, 100);
}

TEST(Moderation, TamperingBreaksSignature) {
  util::Rng rng(1);
  const crypto::KeyPair keys = make_keys(1);
  Moderation m = make_moderation(3, keys, 0xabc, "great movie", 100, rng);
  Moderation altered = m;
  altered.description = "great movie + malware";
  EXPECT_FALSE(verify_moderation(altered));
  altered = m;
  altered.infohash ^= 1;
  EXPECT_FALSE(verify_moderation(altered));
  altered = m;
  altered.moderator = 4;  // re-binding to another moderator fails
  EXPECT_FALSE(verify_moderation(altered));
}

TEST(Moderation, DigestDistinguishesItems) {
  util::Rng rng(1);
  const crypto::KeyPair keys = make_keys(1);
  const Moderation a = make_moderation(1, keys, 0x1, "x", 10, rng);
  const Moderation b = make_moderation(1, keys, 0x2, "x", 10, rng);
  const Moderation c = make_moderation(1, keys, 0x1, "y", 10, rng);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

class DbTest : public ::testing::Test {
 protected:
  DbTest()
      : keys_(make_keys(7)),
        db_(0, DbConfig{},
            [this](ModeratorId m) {
              const auto it = opinions_.find(m);
              return it == opinions_.end() ? Opinion::kNone : it->second;
            }) {}

  Moderation make(ModeratorId moderator, std::uint64_t infohash,
                  Time created = 0) {
    return make_moderation(moderator, keys_, infohash, "desc", created,
                           rng_);
  }

  util::Rng rng_{9};
  crypto::KeyPair keys_;
  std::map<ModeratorId, Opinion> opinions_;
  ModerationDb db_;
};

TEST_F(DbTest, MergeInsertsAndDeduplicates) {
  const Moderation m = make(1, 0xa);
  EXPECT_EQ(db_.merge(m, 10), ModerationDb::MergeResult::kInserted);
  EXPECT_EQ(db_.merge(m, 20), ModerationDb::MergeResult::kDuplicate);
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_TRUE(db_.contains(m.digest()));
}

TEST_F(DbTest, MergeRejectsBadSignature) {
  Moderation m = make(1, 0xa);
  m.description = "tampered";
  EXPECT_EQ(db_.merge(m, 10), ModerationDb::MergeResult::kBadSignature);
  EXPECT_EQ(db_.size(), 0u);
}

TEST_F(DbTest, MergeRefusesDisapprovedModerator) {
  opinions_[5] = Opinion::kNegative;
  EXPECT_EQ(db_.merge(make(5, 0xa), 10),
            ModerationDb::MergeResult::kDisapprovedModerator);
  EXPECT_EQ(db_.size(), 0u);
}

TEST_F(DbTest, CapacityEvictsOldestReceived) {
  ModerationDb small(0, DbConfig{3}, [](ModeratorId) {
    return Opinion::kPositive;
  });
  const Moderation a = make(1, 0x1), b = make(1, 0x2), c = make(1, 0x3),
                   d = make(1, 0x4);
  (void)small.merge(a, 10);
  (void)small.merge(b, 20);
  (void)small.merge(c, 30);
  EXPECT_EQ(small.merge(d, 40), ModerationDb::MergeResult::kEvictedOthers);
  EXPECT_EQ(small.size(), 3u);
  EXPECT_FALSE(small.contains(a.digest()));  // oldest gone
  EXPECT_TRUE(small.contains(d.digest()));
}

TEST_F(DbTest, PurgeModeratorRemovesAllTheirItems) {
  (void)db_.merge(make(1, 0x1), 10);
  (void)db_.merge(make(1, 0x2), 10);
  (void)db_.merge(make(2, 0x3), 10);
  db_.purge_moderator(1);
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_EQ(db_.count_from(1), 0u);
  EXPECT_EQ(db_.count_from(2), 1u);
}

TEST_F(DbTest, ExtractForwardsOnlyApprovedAndOwn) {
  opinions_[1] = Opinion::kPositive;   // approved
  // moderator 2: no vote; moderator 0 is the owner itself.
  (void)db_.merge(make(1, 0x1), 10);
  (void)db_.merge(make(2, 0x2), 10);
  (void)db_.merge(make(0, 0x3), 10);
  const auto out = db_.extract(10, rng_);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& m : out) {
    EXPECT_TRUE(m.moderator == 1 || m.moderator == 0);
  }
}

TEST_F(DbTest, ExtractHonoursCapAndPrefersRecent) {
  opinions_[1] = Opinion::kPositive;
  for (std::uint64_t i = 0; i < 20; ++i) {
    (void)db_.merge(make(1, i), static_cast<Time>(i * 10));
  }
  const auto out = db_.extract(6, rng_);
  ASSERT_EQ(out.size(), 6u);
  // The recency half (3 items) must be the 3 newest receives (170,180,190
  // -> infohashes 17,18,19).
  std::set<std::uint64_t> hashes;
  for (const auto& m : out) hashes.insert(m.infohash);
  EXPECT_TRUE(hashes.contains(19));
  EXPECT_TRUE(hashes.contains(18));
  EXPECT_TRUE(hashes.contains(17));
}

TEST_F(DbTest, ExtractRandomHalfVaries) {
  opinions_[1] = Opinion::kPositive;
  for (std::uint64_t i = 0; i < 30; ++i) {
    (void)db_.merge(make(1, i), static_cast<Time>(i));
  }
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 20; ++trial) {
    for (const auto& m : db_.extract(10, rng_)) seen.insert(m.infohash);
  }
  // Over 20 extractions the random half should have covered far more than
  // one message's worth of items.
  EXPECT_GT(seen.size(), 15u);
}

TEST_F(DbTest, KnownModeratorsSortedUnique) {
  (void)db_.merge(make(5, 0x1), 1);
  (void)db_.merge(make(2, 0x2), 1);
  (void)db_.merge(make(5, 0x3), 1);
  EXPECT_EQ(db_.known_moderators(), (std::vector<ModeratorId>{2, 5}));
}

class CastTest : public ::testing::Test {
 protected:
  struct Peer {
    explicit Peer(PeerId id)
        : keys(make_keys(100 + id)),
          agent(id, keys, ModerationCastConfig{},
                [this](ModeratorId m) {
                  const auto it = opinions.find(m);
                  return it == opinions.end() ? Opinion::kNone : it->second;
                },
                util::Rng(200 + id)) {}
    crypto::KeyPair keys;
    std::map<ModeratorId, Opinion> opinions;
    ModerationCastAgent agent;
  };
};

TEST_F(CastTest, PublishStoresOwnModeration) {
  Peer alice(0);
  const Moderation& m = alice.agent.publish(0xfeed, "my upload", 5);
  EXPECT_TRUE(verify_moderation(m));
  EXPECT_EQ(alice.agent.db().count_from(0), 1u);
}

TEST_F(CastTest, ExchangeSpreadsOwnModerations) {
  Peer alice(0), bob(1);
  alice.agent.publish(0xfeed, "my upload", 5);
  exchange(alice.agent, bob.agent, 10);
  EXPECT_EQ(bob.agent.db().count_from(0), 1u);
}

TEST_F(CastTest, UnapprovedModerationsDoNotRelay) {
  Peer alice(0), bob(1), carol(2);
  alice.agent.publish(0xfeed, "content", 5);
  exchange(alice.agent, bob.agent, 10);   // bob has it (direct contact)
  exchange(bob.agent, carol.agent, 20);   // bob does NOT forward: no vote
  EXPECT_EQ(carol.agent.db().count_from(0), 0u);
}

TEST_F(CastTest, ApprovalEnablesRelay) {
  Peer alice(0), bob(1), carol(2);
  alice.agent.publish(0xfeed, "content", 5);
  exchange(alice.agent, bob.agent, 10);
  bob.opinions[0] = Opinion::kPositive;  // bob approves moderator 0
  exchange(bob.agent, carol.agent, 20);
  EXPECT_EQ(carol.agent.db().count_from(0), 1u);
}

TEST_F(CastTest, DisapprovalPurgesAndBlocks) {
  Peer alice(0), bob(1);
  alice.agent.publish(0xfeed, "content", 5);
  exchange(alice.agent, bob.agent, 10);
  ASSERT_EQ(bob.agent.db().count_from(0), 1u);
  bob.opinions[0] = Opinion::kNegative;
  bob.agent.handle_disapproval(0);
  EXPECT_EQ(bob.agent.db().count_from(0), 0u);
  // Further direct contact cannot re-insert.
  exchange(alice.agent, bob.agent, 30);
  EXPECT_EQ(bob.agent.db().count_from(0), 0u);
}

TEST_F(CastTest, OnNewModerationFiresOncePerItem) {
  Peer alice(0), bob(1);
  int fires = 0;
  bob.agent.on_new_moderation = [&](const Moderation&) { ++fires; };
  alice.agent.publish(0xfeed, "content", 5);
  exchange(alice.agent, bob.agent, 10);
  exchange(alice.agent, bob.agent, 20);  // duplicate: no second fire
  EXPECT_EQ(fires, 1);
}

TEST_F(CastTest, CorruptedItemIsRejectedItemWise) {
  // In-flight bit damage as the fault plane deals it: each moderation
  // carries its own signature, so one damaged item is dropped alone and
  // the rest of the batch still merges.
  Peer alice(0), bob(1);
  alice.agent.publish(0x1, "first", 5);
  alice.agent.publish(0x2, "second", 6);
  std::vector<Moderation> batch = alice.agent.outgoing();
  ASSERT_EQ(batch.size(), 2u);
  batch[0].signature.s ^= 1ull << 9;
  const auto rs = bob.agent.receive(batch, 10);
  EXPECT_EQ(rs.bad_signature, 1u);
  EXPECT_EQ(rs.inserted, 1u);
  EXPECT_EQ(bob.agent.db().count_from(0), 1u);
  // The db is not poisoned: the pristine item still merges later.
  const auto again = bob.agent.receive(alice.agent.outgoing(), 20);
  EXPECT_EQ(again.inserted, 1u);
  EXPECT_EQ(bob.agent.db().count_from(0), 2u);
}

TEST_F(CastTest, TruncatedBatchMergesTheRemainder) {
  Peer alice(0), bob(1);
  alice.agent.publish(0x1, "first", 5);
  alice.agent.publish(0x2, "second", 6);
  std::vector<Moderation> batch = alice.agent.outgoing();
  ASSERT_EQ(batch.size(), 2u);
  batch.resize(1);  // tail lost in flight
  const auto rs = bob.agent.receive(batch, 10);
  EXPECT_EQ(rs.bad_signature, 0u);
  EXPECT_EQ(rs.inserted, 1u);
}

TEST_F(CastTest, UndeliveredItemsAreReofferedFirst) {
  Peer alice(0);
  alice.agent.publish(0x1, "lost in transit", 5);
  const std::vector<Moderation> push = alice.agent.outgoing();
  ASSERT_EQ(push.size(), 1u);
  EXPECT_EQ(alice.agent.note_undelivered(push), 1u);
  EXPECT_EQ(alice.agent.pending_reoffers(), 1u);
  // The next push leads with the undelivered item and clears the queue.
  const std::vector<Moderation> retry = alice.agent.outgoing();
  ASSERT_FALSE(retry.empty());
  EXPECT_EQ(retry.front().infohash, 0x1u);
  EXPECT_EQ(alice.agent.pending_reoffers(), 0u);
}

TEST_F(CastTest, ReofferedDuplicatesDedupOnMerge) {
  Peer alice(0), bob(1);
  alice.agent.publish(0x1, "at least once", 5);
  const std::vector<Moderation> push = alice.agent.outgoing();
  (void)bob.agent.receive(push, 10);  // delivered, but alice never learns
  (void)alice.agent.note_undelivered(push);
  const auto rs = bob.agent.receive(alice.agent.outgoing(), 20);
  EXPECT_EQ(rs.inserted, 0u);
  EXPECT_EQ(rs.duplicates, 1u);
  EXPECT_EQ(bob.agent.db().count_from(0), 1u);
}

TEST_F(CastTest, ExchangeIsBidirectional) {
  Peer alice(0), bob(1);
  alice.agent.publish(0x1, "from alice", 5);
  bob.agent.publish(0x2, "from bob", 5);
  exchange(alice.agent, bob.agent, 10);
  EXPECT_EQ(alice.agent.db().count_from(1), 1u);
  EXPECT_EQ(bob.agent.db().count_from(0), 1u);
}

}  // namespace
}  // namespace tribvote::moderation
