// Cross-module property tests: randomized operation sequences checked
// against invariants, parameterized over seeds (TEST_P sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "bartercast/maxflow.hpp"
#include "bartercast/protocol.hpp"
#include "bt/transfer_ledger.hpp"
#include "moderation/db.hpp"
#include "sim/simulator.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/rng.hpp"
#include "vote/ballot_box.hpp"
#include "vote/voxpopuli.hpp"

namespace tribvote {
namespace {

// ---- simulator: random schedules execute in nondecreasing time order --------

class SimulatorOrderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimulatorOrderProperty, EventsFireInNondecreasingTimeOrder) {
  util::Rng rng(GetParam());
  sim::Simulator sim;
  std::vector<Time> fired;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 300; ++i) {
    const Time at = static_cast<Time>(rng.next_below(10000));
    handles.push_back(
        sim.schedule_at(at, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (auto& h : handles) {
    if (rng.next_bool(0.33)) {
      h.cancel();
      ++cancelled;
    }
  }
  sim.run_until(10000);
  EXPECT_EQ(fired.size(), 300 - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrderProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---- ballot box: random merges never violate the structural invariants ------

class BallotBoxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BallotBoxProperty, InvariantsHoldUnderRandomMerges) {
  util::Rng rng(GetParam());
  const std::size_t b_max = 1 + rng.next_below(60);
  vote::BallotBox box(b_max);
  std::set<PeerId> voters_seen;
  for (int op = 0; op < 400; ++op) {
    const auto voter = static_cast<PeerId>(rng.next_below(25));
    std::vector<vote::VoteEntry> votes;
    const auto n_votes = 1 + rng.next_below(4);
    for (std::uint64_t v = 0; v < n_votes; ++v) {
      votes.push_back(vote::VoteEntry{
          static_cast<ModeratorId>(rng.next_below(8)),
          rng.next_bool(0.5) ? Opinion::kPositive : Opinion::kNegative,
          static_cast<Time>(op)});
    }
    box.merge(voter, votes, static_cast<Time>(op));

    // Invariant: capacity respected.
    ASSERT_LE(box.size(), b_max);
    // Invariant: unique voters consistent with tally mass.
    std::size_t tally_mass = 0;
    for (const auto& [m, t] : box.tally()) tally_mass += t.total();
    ASSERT_EQ(tally_mass, box.size());
    ASSERT_LE(box.unique_voters(), box.size());
    ASSERT_GE(box.unique_voters(), box.size() > 0 ? 1u : 0u);
    // Invariant: dispersion bounded.
    ASSERT_GE(box.dispersion(), 0.0);
    ASSERT_LE(box.dispersion(), 1.0);
    ASSERT_GE(box.max_dispersion(/*min_votes=*/2),
              box.dispersion() - 1e-12);
  }
  // Purging everything empties the box coherently.
  box.purge_voters([](PeerId) { return false; });
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(box.unique_voters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BallotBoxProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

// ---- VoxPopuli: merged ranking contains exactly the cached moderators -------

class VoxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoxProperty, MergedRankingIsPermutationOfCachedModerators) {
  util::Rng rng(GetParam());
  const std::size_t v_max = 1 + rng.next_below(12);
  const std::size_t k = 1 + rng.next_below(6);
  vote::VoxPopuliCache cache(v_max, k);
  std::vector<vote::RankedList> recent;  // our model of the cache window
  for (int round = 0; round < 60; ++round) {
    vote::RankedList list;
    std::set<ModeratorId> used;
    const std::size_t len = 1 + rng.next_below(k);
    while (list.size() < len) {
      const auto m = static_cast<ModeratorId>(rng.next_below(12));
      if (used.insert(m).second) list.push_back(m);
    }
    cache.add_list(list);
    recent.push_back(list);
    if (recent.size() > v_max) recent.erase(recent.begin());

    const vote::RankedList merged = cache.merged_ranking();
    std::set<ModeratorId> expected;
    for (const auto& l : recent) expected.insert(l.begin(), l.end());
    std::set<ModeratorId> actual(merged.begin(), merged.end());
    ASSERT_EQ(actual, expected) << "round " << round;
    ASSERT_EQ(merged.size(), actual.size()) << "duplicates in ranking";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoxProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

// ---- moderation db: extract never leaks disapproved moderators --------------

class ModerationDbProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ModerationDbProperty, ExtractRespectsApprovalGating) {
  util::Rng rng(GetParam());
  util::Rng key_rng(GetParam() ^ 0xfeed);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);
  std::map<ModeratorId, Opinion> opinions;
  moderation::ModerationDb db(
      /*owner=*/99, moderation::DbConfig{50},
      [&opinions](ModeratorId m) {
        const auto it = opinions.find(m);
        return it == opinions.end() ? Opinion::kNone : it->second;
      });
  for (int op = 0; op < 200; ++op) {
    const auto moderator = static_cast<ModeratorId>(rng.next_below(6));
    const double roll = rng.next_double();
    if (roll < 0.5) {
      (void)db.merge(moderation::make_moderation(
                         moderator, keys, rng(), "item",
                         static_cast<Time>(op), rng),
                     static_cast<Time>(op));
    } else if (roll < 0.7) {
      opinions[moderator] =
          rng.next_bool(0.5) ? Opinion::kPositive : Opinion::kNegative;
      if (opinions[moderator] == Opinion::kNegative) {
        db.purge_moderator(moderator);
      }
    } else {
      const auto out = db.extract(1 + rng.next_below(20), rng);
      std::set<moderation::ModerationId> ids;
      for (const auto& m : out) {
        // Gating: own or positively-approved moderators only.
        const auto it = opinions.find(m.moderator);
        const Opinion o = it == opinions.end() ? Opinion::kNone : it->second;
        ASSERT_TRUE(m.moderator == 99 || o == Opinion::kPositive)
            << "leaked moderator " << m.moderator;
        ASSERT_TRUE(ids.insert(m.digest()).second) << "duplicate item";
      }
    }
    ASSERT_LE(db.size(), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModerationDbProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

// ---- trace: generate -> serialize -> parse roundtrips for random params -----

class TraceRoundtripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TraceRoundtripProperty, GeneratedTracesRoundtripAndValidate) {
  util::Rng rng(GetParam());
  trace::GeneratorParams params;
  params.n_peers = static_cast<std::uint32_t>(5 + rng.next_below(40));
  params.n_swarms = static_cast<std::uint32_t>(1 + rng.next_below(6));
  params.duration = static_cast<Duration>(
      kDay / 2 + static_cast<Duration>(rng.next_below(2 * kDay)));
  params.free_rider_fraction = rng.next_double(0.0, 0.5);
  const trace::Trace original = trace::generate_trace(params, rng());

  std::stringstream buf;
  trace::write_trace(buf, original);
  const trace::Trace parsed = trace::read_trace(buf);
  EXPECT_EQ(parsed.event_count(), original.event_count());
  EXPECT_EQ(parsed.peers.size(), original.peers.size());

  // Analyzer invariants on arbitrary generated traces.
  const trace::TraceStats st = trace::analyze(parsed);
  EXPECT_GE(st.avg_online_fraction, 0.0);
  EXPECT_LE(st.avg_online_fraction, 1.0);
  EXPECT_LE(st.free_rider_fraction, 1.0);
  for (const auto& s : parsed.sessions) {
    EXPECT_LT(s.start, s.end);
    EXPECT_LE(s.end, parsed.duration);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundtripProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

// ---- barter contribution cache: cached == scratch across random mutations ---

class BarterCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Drives a BarterAgent through 1k random mutations (direct-view syncs and
// gossip merges, interleaved with pin conflicts and stale reports) and
// checks after every step that the memoized contribution_of answers are
// bit-identical to a scratch max_flow over the same graph, and match a
// brute-force closed-form recompute from edge_mb (independent of the CSR /
// cache machinery). Also cross-checks the batched column periodically.
TEST_P(BarterCacheProperty, CachedContributionsEqualScratchRecompute) {
  util::Rng rng(GetParam() * 7919 + 17);
  constexpr PeerId kPeers = 12;
  const int hops = GetParam() % 3 == 2 ? 3 : 2;  // exercise the EK path too
  bartercast::BarterConfig config;
  config.max_path_edges = hops;
  bt::TransferLedger ledger(kPeers);
  bartercast::BarterAgent agent(0, config);

  Time now = 1;
  for (int step = 0; step < 1000; ++step) {
    ++now;
    if (rng.next_bool(0.3)) {
      // A transfer adjacent to the agent, then a direct-view sync.
      const auto other = static_cast<PeerId>(1 + rng.next_below(kPeers - 1));
      if (rng.next_bool(0.5)) {
        ledger.add_transfer(other, 0, rng.next_double(0.1, 20.0) * 1024 * 1024);
      } else {
        ledger.add_transfer(0, other, rng.next_double(0.1, 20.0) * 1024 * 1024);
      }
      agent.sync_direct(ledger, now);
    } else {
      // Gossip from a random sender about one of its pairs; timestamps are
      // sometimes stale so the freshest-wins rule gets exercised.
      const auto sender = static_cast<PeerId>(1 + rng.next_below(kPeers - 1));
      auto counterpart = static_cast<PeerId>(rng.next_below(kPeers));
      if (counterpart == sender) counterpart = (sender + 1) % kPeers;
      const Time reported =
          rng.next_bool(0.2) ? now - static_cast<Time>(rng.next_below(500))
                             : now;
      const bartercast::BarterRecord record =
          rng.next_bool(0.5)
              ? bartercast::BarterRecord{sender, counterpart,
                                         rng.next_double(0.1, 20.0), reported}
              : bartercast::BarterRecord{counterpart, sender,
                                         rng.next_double(0.1, 20.0), reported};
      agent.receive(sender, {record});
    }

    // Cached vs scratch: must be bit-identical (same code path, memo off).
    const auto probe = static_cast<PeerId>(rng.next_below(kPeers));
    const double cached = agent.contribution_of(probe);
    const double scratch =
        probe == 0 ? 0.0 : bartercast::max_flow(agent.graph(), probe, 0, hops);
    EXPECT_DOUBLE_EQ(cached, scratch) << "step " << step << " j=" << probe;

    // Cached vs brute force (hop bound 2 admits the closed form).
    if (hops == 2) {
      double reference = agent.graph().edge_mb(probe, 0);
      for (PeerId k = 1; k < kPeers; ++k) {
        if (k == probe) continue;
        const double a = agent.graph().edge_mb(probe, k);
        const double b = agent.graph().edge_mb(k, 0);
        if (a > 0 && b > 0) reference += std::min(a, b);
      }
      if (probe == 0) reference = 0.0;
      EXPECT_NEAR(cached, reference, 1e-9) << "step " << step;
    }

    if (step % 100 == 99) {
      const std::vector<double>& column = agent.contribution_column(kPeers);
      for (PeerId j = 0; j < kPeers; ++j) {
        EXPECT_DOUBLE_EQ(column[j], agent.contribution_of(j))
            << "step " << step << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarterCacheProperty,
                         ::testing::Range<std::uint64_t>(0, 9));

}  // namespace
}  // namespace tribvote
