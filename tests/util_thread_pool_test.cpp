#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tribvote::util {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::logic_error("task failed");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ManyTasksAccumulate) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SingleThreadIsSequentialSafe) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // FIFO on one worker
}

}  // namespace
}  // namespace tribvote::util
