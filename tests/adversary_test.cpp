// Adversary plane: roster parsing, id layout, the inert-when-off
// contract, per-strategy effects and the shard-invariance acceptance bar
// (byte-identical metrics at shards {1, 4, 8}, faults on, for every
// strategy and both workloads).
#include "adversary/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/runner.hpp"
#include "metrics/degradation.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

namespace tribvote::adversary {
namespace {

using core::ScenarioConfig;
using core::ScenarioRunner;

// ---- spec parsing ------------------------------------------------------------

TEST(AdversarySpec, ParseFullRoster) {
  AdversaryConfig c;
  std::string error;
  ASSERT_TRUE(parse_adversary_spec(
      "attrition:n=20,rate=4,start=3600,duty=0.5,session=1800;"
      "sybil:n=16,region=4,credit=2.5,victim=3;"
      "nuisance:n=8,flip=0.3;colluder:n=6,fake_exp=1,fake_mb=500;front:n=4",
      c, &error))
      << error;
  ASSERT_EQ(c.roster.size(), 5u);
  EXPECT_EQ(c.roster[0].kind, StrategyKind::kAttrition);
  EXPECT_EQ(c.roster[0].agents, 20u);
  EXPECT_EQ(c.roster[0].rate, 4u);
  EXPECT_EQ(c.roster[0].start, 3600);
  EXPECT_DOUBLE_EQ(c.roster[0].duty, 0.5);
  EXPECT_EQ(c.roster[0].session_mean, 1800);
  EXPECT_EQ(c.roster[1].kind, StrategyKind::kSybil);
  EXPECT_EQ(c.roster[1].region, 4u);
  EXPECT_DOUBLE_EQ(c.roster[1].credit_mb, 2.5);
  EXPECT_EQ(c.roster[1].victim, 3u);
  EXPECT_EQ(c.roster[2].kind, StrategyKind::kNuisance);
  EXPECT_DOUBLE_EQ(c.roster[2].flip, 0.3);
  EXPECT_TRUE(c.roster[3].fake_experience);
  EXPECT_DOUBLE_EQ(c.roster[3].fake_mb, 500.0);
  EXPECT_EQ(c.roster[4].kind, StrategyKind::kFrontPeer);
  EXPECT_EQ(c.total_agents(), 54u);
  EXPECT_TRUE(c.enabled());
}

TEST(AdversarySpec, EmptySpecParsesToEmptyRoster) {
  AdversaryConfig c;
  ASSERT_TRUE(parse_adversary_spec("", c, nullptr));
  EXPECT_TRUE(c.roster.empty());
  EXPECT_FALSE(c.enabled());
}

TEST(AdversarySpec, ZeroAgentEntryStaysDisabled) {
  AdversaryConfig c;
  ASSERT_TRUE(parse_adversary_spec("attrition", c, nullptr));
  ASSERT_EQ(c.roster.size(), 1u);
  EXPECT_FALSE(c.enabled());  // n defaults to 0: an inert roster entry
}

TEST(AdversarySpec, RejectsUnknownKindAndKey) {
  AdversaryConfig c;
  std::string error;
  EXPECT_FALSE(parse_adversary_spec("ddos:n=4", c, &error));
  EXPECT_NE(error.find("ddos"), std::string::npos) << error;
  EXPECT_FALSE(parse_adversary_spec("attrition:bogus=1", c, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(AdversarySpec, RejectsOutOfRangeValues) {
  AdversaryConfig c;
  EXPECT_FALSE(parse_adversary_spec("nuisance:n=4,flip=1.5", c, nullptr));
  EXPECT_FALSE(parse_adversary_spec("sybil:n=4,region=1", c, nullptr));
  EXPECT_FALSE(parse_adversary_spec("attrition:n=4,duty=0", c, nullptr));
  EXPECT_FALSE(parse_adversary_spec("attrition:n=4,rate=0", c, nullptr));
  EXPECT_FALSE(parse_adversary_spec("attrition:n=abc", c, nullptr));
}

TEST(AdversarySpec, DescribeRoundTripsTheRoster) {
  EXPECT_EQ(describe(AdversaryConfig{}), "off");
  AdversaryConfig c;
  ASSERT_TRUE(
      parse_adversary_spec("attrition:n=20,rate=4;sybil:n=16,region=4", c));
  const std::string s = describe(c);
  EXPECT_NE(s.find("attrition:n=20"), std::string::npos) << s;
  EXPECT_NE(s.find("sybil:n=16"), std::string::npos) << s;
}

// ---- layout ------------------------------------------------------------------

TEST(AdversaryLayout, DenseIdsInRosterOrder) {
  AdversaryConfig c;
  ASSERT_TRUE(parse_adversary_spec("attrition:n=3;sybil:n=6,region=3", c));
  const Layout layout(c, /*first_id=*/100);
  EXPECT_FALSE(layout.empty());
  EXPECT_EQ(layout.first_id(), 100u);
  EXPECT_EQ(layout.end_id(), 109u);
  EXPECT_FALSE(layout.is_adversary(99));
  EXPECT_TRUE(layout.is_adversary(100));
  EXPECT_TRUE(layout.is_adversary(108));
  EXPECT_FALSE(layout.is_adversary(109));
  EXPECT_EQ(layout.agents_of(0), (std::vector<PeerId>{100, 101, 102}));
  EXPECT_EQ(layout.agents_of(1).size(), 6u);
  EXPECT_EQ(layout.agents_of(1).front(), 103u);
}

TEST(AdversaryLayout, SpamModeratorIsFirstLyingAgent) {
  AdversaryConfig c;
  ASSERT_TRUE(parse_adversary_spec("attrition:n=3;colluder:n=4", c));
  const Layout layout(c, 50);
  // Attrition does not lie about votes; the colluder block starts at 53.
  EXPECT_EQ(layout.spam_moderator(), 53u);
  EXPECT_TRUE(layout.profile(53).spam_votes);
  EXPECT_FALSE(layout.profile(50).spam_votes);

  const Layout none(AdversaryConfig{}, 50);
  EXPECT_EQ(none.spam_moderator(), kInvalidModerator);
}

TEST(AdversaryLayout, SybilRegionsHaveOneWorkerEach) {
  AdversaryConfig c;
  ASSERT_TRUE(parse_adversary_spec("sybil:n=6,region=3", c));
  const Layout layout(c, 10);
  // Two regions: [10, 11, 12] headed by 10 and [13, 14, 15] headed by 13.
  for (PeerId id = 10; id < 16; ++id) {
    const AgentProfile& p = layout.profile(id);
    EXPECT_EQ(p.worker, id == 10 || id == 13) << id;
    EXPECT_EQ(p.region_head, id < 13 ? 10u : 13u) << id;
    EXPECT_TRUE(p.spam_votes) << id;  // sybils free-ride the vote plane
  }
}

// ---- runner integration --------------------------------------------------------

/// Small, fast trace for the runner tests (mirrors core_runner_test).
trace::Trace small_trace(std::uint64_t seed = 5) {
  trace::GeneratorParams params;
  params.n_peers = 20;
  params.n_swarms = 3;
  params.duration = kDay;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  return trace::generate_trace(params, seed);
}

/// Scripted scenario at a given shard count, serialized to a CSV string —
/// protocol counters, bit-exact CEV, rankings, degradation counters, the
/// adversary plane's own stats and the streaming totals, so any
/// shard-count divergence anywhere in the stack shows up as a byte
/// difference.
std::string metrics_csv(const trace::Trace& tr, ScenarioConfig config,
                        std::size_t shards) {
  config.shards = shards;
  ScenarioRunner runner(tr, config, /*seed=*/42);
  const auto firsts = trace::earliest_arrivals(tr, 2);
  runner.publish_moderation(firsts[0], kMinute, "good metadata");
  runner.publish_moderation(firsts[1], 2 * kMinute, "plain metadata");
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p == firsts[0] || p == firsts[1]) continue;
    runner.script_vote_on_receipt(
        p, p % 2 == 0 ? firsts[0] : firsts[1],
        p % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }
  std::string csv = "t,online,accepted,rejected,vp,cev,top\n";
  runner.sample_every(2 * kHour, [&](Time t) {
    const double cev =
        runner.collective_experience(config.experience_threshold_mb);
    const vote::RankedList rank = runner.ranking_of(3);
    char line[160];
    std::snprintf(
        line, sizeof line, "%lld,%zu,%llu,%llu,%llu,%.17g,%u\n",
        static_cast<long long>(t), runner.online_count(),
        static_cast<unsigned long long>(runner.stats().votes_accepted),
        static_cast<unsigned long long>(
            runner.stats().votes_rejected_inexperienced),
        static_cast<unsigned long long>(runner.stats().vp_requests_answered),
        cev, rank.empty() ? kInvalidModerator : rank.front());
    csv += line;
  });
  runner.run_until(tr.duration);
  char tail[256];
  std::snprintf(tail, sizeof tail, "final,%llu,%llu,%llu,%.17g\n",
                static_cast<unsigned long long>(
                    runner.stats().downloads_completed),
                static_cast<unsigned long long>(runner.stats().vote_exchanges),
                static_cast<unsigned long long>(
                    runner.stats().moderation_exchanges),
                runner.ledger().total_uploaded_mb(0));
  csv += tail;
  csv += "faults";
  for (const auto& [name, value] :
       metrics::degradation_columns(runner.fault_stats())) {
    csv += ',' + std::to_string(value);
  }
  csv += '\n';
  const AdversaryStats as = runner.adversary_stats();
  std::snprintf(tail, sizeof tail,
                "adv,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.17g\n",
                static_cast<unsigned long long>(as.activations),
                static_cast<unsigned long long>(as.presence_flips),
                static_cast<unsigned long long>(as.floods_sent),
                static_cast<unsigned long long>(as.flood_bytes),
                static_cast<unsigned long long>(as.flood_rejected),
                static_cast<unsigned long long>(as.nuisance_flips),
                static_cast<unsigned long long>(as.credit_transfers),
                as.credit_mb);
  csv += tail;
  const bt::StreamingTotals stot = runner.streaming_totals();
  std::snprintf(tail, sizeof tail, "stream,%llu,%llu,%llu,%llu\n",
                static_cast<unsigned long long>(stot.started),
                static_cast<unsigned long long>(stot.finished),
                static_cast<unsigned long long>(stot.pieces_on_time),
                static_cast<unsigned long long>(stot.deadline_misses));
  csv += tail;
  return csv;
}

ScenarioConfig config_with(const std::string& adversary_spec,
                           bool streaming = false) {
  ScenarioConfig config;
  std::string error;
  EXPECT_TRUE(parse_adversary_spec(adversary_spec, config.adversary, &error))
      << error;
  config.streaming.enabled = streaming;
  // Transport faults on: the plane must stay shard-invariant even when its
  // agents' encounters fault (the acceptance bar in ISSUE terms).
  config.faults.loss = 0.2;
  config.faults.delay_rate = 0.1;
  config.faults.crash_rate = 0.02;
  config.faults.corrupt_rate = 0.05;
  return config;
}

TEST(AdversaryRunner, EmptyRosterConstructsNoEngineOrAgents) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ScenarioRunner runner(tr, config, 42);
  EXPECT_EQ(runner.adversary(), nullptr);
  EXPECT_TRUE(runner.adversary_layout().empty());
  EXPECT_EQ(runner.population_size(), tr.peers.size());
  EXPECT_EQ(runner.adversary_stats().activations, 0u);
}

TEST(AdversaryRunner, AgentsFollowTheLegacyCrowd) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  config.attack.crowd_size = 4;
  ASSERT_TRUE(parse_adversary_spec("attrition:n=3", config.adversary));
  ScenarioRunner runner(tr, config, 42);
  EXPECT_EQ(runner.population_size(), tr.peers.size() + 4 + 3);
  EXPECT_EQ(runner.adversary_layout().first_id(), tr.peers.size() + 4);
  ASSERT_NE(runner.adversary(), nullptr);
}

TEST(AdversaryRunner, AttritionFloodsBurnBudgetsButStayRejected) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ASSERT_TRUE(parse_adversary_spec("attrition:n=4,rate=3,start=3600",
                                   config.adversary));
  ScenarioRunner runner(tr, config, 42);
  runner.run_until(tr.duration);
  const AdversaryStats as = runner.adversary_stats();
  EXPECT_EQ(as.activations, 1u);
  EXPECT_GT(as.floods_sent, 0u);
  EXPECT_GT(as.flood_bytes, 0u);
  // Flooders never earn experience, so every flood bounces off E.
  EXPECT_EQ(as.flood_rejected, as.floods_sent);
}

TEST(AdversaryRunner, NuisanceChurnsVotesAndEarnsExperience) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ASSERT_TRUE(parse_adversary_spec("nuisance:n=4,flip=0.5,credit=3",
                                   config.adversary));
  ScenarioRunner runner(tr, config, 42);
  // Nuisance agents churn votes on moderators they have heard of, so give
  // the gossip plane something to spread.
  const auto firsts = trace::earliest_arrivals(tr, 1);
  runner.publish_moderation(firsts[0], kMinute, "churn target");
  runner.run_until(tr.duration);
  const AdversaryStats as = runner.adversary_stats();
  EXPECT_GT(as.nuisance_flips, 0u);
  EXPECT_GT(as.credit_transfers, 0u);
  // The dripped credit is genuine: it lands in the ground-truth ledger.
  const PeerId agent = runner.adversary_layout().first_id();
  EXPECT_GT(runner.ledger().total_uploaded_mb(agent), 0.0);
}

TEST(AdversaryRunner, SybilRegionClearsExperienceThroughItsWorker) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ASSERT_TRUE(parse_adversary_spec("sybil:n=4,region=4,credit=2",
                                   config.adversary));
  ScenarioRunner runner(tr, config, 42);
  runner.run_until(tr.duration);
  const Layout& layout = runner.adversary_layout();
  const PeerId worker = layout.first_id();
  const PeerId member = worker + 1;
  // Members upload to the worker, the worker uploads outward — every edge
  // is a real ledger row, so two-hop max-flow member -> worker -> honest
  // clears E for the whole region.
  EXPECT_GT(runner.ledger().total_uploaded_mb(worker), 0.0);
  EXPECT_GT(runner.ledger().total_uploaded_mb(member), 0.0);
  EXPECT_GT(runner.adversary_stats().credit_transfers, 0u);
  // And the region promotes its M0 like a flash crowd.
  EXPECT_EQ(layout.spam_moderator(), worker);
}

TEST(AdversaryRunner, DutyCycledAgentsChurn) {
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ASSERT_TRUE(parse_adversary_spec(
      "attrition:n=6,rate=1,duty=0.5,session=1800", config.adversary));
  ScenarioRunner runner(tr, config, 42);
  runner.run_until(tr.duration);
  EXPECT_GT(runner.adversary_stats().presence_flips, 6u);
}

// ---- shard invariance (the acceptance bar) -----------------------------------

TEST(AdversaryRunner, ShardInvarianceColluder) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config =
      config_with("colluder:n=6,start=7200,duty=0.5,victim=2");
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ShardInvarianceFrontPeer) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config = config_with("front:n=5,fake_mb=200");
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ShardInvarianceAttrition) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config =
      config_with("attrition:n=5,rate=3,duty=0.6,session=1800");
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ShardInvarianceNuisance) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config =
      config_with("nuisance:n=5,flip=0.4,credit=2");
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ShardInvarianceSybil) {
  const trace::Trace tr = small_trace();
  const ScenarioConfig config =
      config_with("sybil:n=8,region=4,credit=2,victim=2");
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ShardInvarianceMixedRosterOnStreamingWorkload) {
  // The full stack at once: two strategies, streaming workload, transport
  // faults — the hardest determinism surface this PR adds.
  const trace::Trace tr = small_trace(/*seed=*/11);
  const ScenarioConfig config = config_with(
      "attrition:n=4,rate=2;sybil:n=4,region=4", /*streaming=*/true);
  const std::string serial = metrics_csv(tr, config, 1);
  EXPECT_EQ(serial, metrics_csv(tr, config, 4));
  EXPECT_EQ(serial, metrics_csv(tr, config, 8));
}

TEST(AdversaryRunner, ChaosAttritionUnderBurstyLossWithTelemetry) {
  // Chaos smoke: attrition floods + Gilbert–Elliott bursty loss +
  // telemetry counters on, twice — identical counters both times.
  const trace::Trace tr = small_trace();
  ScenarioConfig config;
  ASSERT_TRUE(
      parse_adversary_spec("attrition:n=4,rate=2", config.adversary));
  std::string error;
  ASSERT_TRUE(sim::parse_fault_spec("ge=0.3,part_period=32,part_width=4,"
                                    "part_frac=0.5",
                                    config.faults, &error))
      << error;
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  auto run = [&] {
    ScenarioRunner runner(tr, config, 42);
    runner.run_until(tr.duration);
    EXPECT_GT(runner.fault_stats().total().ge_bad_encounters, 0u);
    EXPECT_GT(runner.fault_stats().total().partitioned, 0u);
    EXPECT_GT(runner.adversary_stats().floods_sent, 0u);
    EXPECT_NE(runner.telemetry(), nullptr);
    char line[160];
    std::snprintf(
        line, sizeof line, "%llu,%llu,%llu",
        static_cast<unsigned long long>(
            runner.telemetry()->registry().total_by_name("adv.floods_sent")),
        static_cast<unsigned long long>(
            runner.adversary_stats().flood_bytes),
        static_cast<unsigned long long>(runner.stats().votes_accepted));
    return std::string(line);
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first, "0,0,0");
}

}  // namespace
}  // namespace tribvote::adversary
