#include "dht/chord.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tribvote::dht {
namespace {

TEST(ChordInterval, BasicAndWrapping) {
  EXPECT_TRUE(in_interval(5, 1, 10));
  EXPECT_TRUE(in_interval(10, 1, 10));   // half-open: to included
  EXPECT_FALSE(in_interval(1, 1, 10));   // from excluded
  EXPECT_FALSE(in_interval(11, 1, 10));
  // Wrapping interval (from > to).
  EXPECT_TRUE(in_interval(0, ~0ULL - 5, 10));
  EXPECT_TRUE(in_interval(~0ULL, ~0ULL - 5, 10));
  EXPECT_FALSE(in_interval(100, ~0ULL - 5, 10));
  // Degenerate covers everything.
  EXPECT_TRUE(in_interval(42, 7, 7));
}

TEST(ChordKey, DistinctPerPeer) {
  std::set<Key> keys;
  for (PeerId p = 0; p < 1000; ++p) keys.insert(key_of_peer(p));
  EXPECT_EQ(keys.size(), 1000u);
}

class ChordTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 50;
  ChordTest() : ring_(kN, ChordConfig{}, util::Rng(1)) {}

  void join_all() {
    for (PeerId p = 0; p < kN; ++p) ring_.join(p);
    for (int r = 0; r < 5; ++r) ring_.stabilize_round();
  }

  ChordRing ring_;
};

TEST_F(ChordTest, JoinLeaveTracksOnlineSet) {
  EXPECT_EQ(ring_.online_count(), 0u);
  ring_.join(3);
  ring_.join(7);
  EXPECT_TRUE(ring_.is_online(3));
  EXPECT_EQ(ring_.online_count(), 2u);
  ring_.leave(3);
  EXPECT_FALSE(ring_.is_online(3));
  ring_.leave(3);  // idempotent
  EXPECT_EQ(ring_.online_count(), 1u);
}

TEST_F(ChordTest, ResponsibilityIsRingSuccessor) {
  join_all();
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Key key = rng();
    const PeerId owner = ring_.responsible_for(key);
    ASSERT_NE(owner, kInvalidPeer);
    // No other online node lies strictly between key and owner clockwise.
    for (PeerId p = 0; p < kN; ++p) {
      if (p == owner) continue;
      EXPECT_FALSE(in_interval(key_of_peer(p), key - 1, key_of_peer(owner)) &&
                   key_of_peer(p) != key_of_peer(owner))
          << "node " << p << " should own key before " << owner;
    }
  }
}

TEST_F(ChordTest, StableRingLookupsSucceedWithLogHops) {
  join_all();
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Key key = rng();
    const auto origin = static_cast<PeerId>(rng.next_below(kN));
    ASSERT_TRUE(ring_.store(origin, key));
    const LookupResult result =
        ring_.lookup(static_cast<PeerId>(rng.next_below(kN)), key);
    EXPECT_TRUE(result.success) << "lookup " << i;
    EXPECT_LE(result.hops, 16u);  // ~2·log2(50) with slack
  }
}

TEST_F(ChordTest, SuccessorsRecoverAfterChurn) {
  join_all();
  // Kill a third of the ring ungracefully.
  for (PeerId p = 0; p < kN; p += 3) ring_.leave(p);
  for (int r = 0; r < 5; ++r) ring_.stabilize_round();
  for (PeerId p = 0; p < kN; ++p) {
    if (!ring_.is_online(p)) continue;
    const PeerId succ = ring_.successor_of(p);
    ASSERT_NE(succ, kInvalidPeer);
    EXPECT_TRUE(ring_.is_online(succ));
  }
}

TEST_F(ChordTest, ReplicationSurvivesSingleFailure) {
  join_all();
  const Key key = 0xfeedbeef;
  ASSERT_TRUE(ring_.store(0, key));
  const PeerId owner = ring_.responsible_for(key);
  ring_.leave(owner);
  // A replica on the owner's successor keeps the key alive.
  EXPECT_TRUE(ring_.key_alive(key));
  for (int r = 0; r < 3; ++r) ring_.stabilize_round();
  const LookupResult result = ring_.lookup(ring_.responsible_for(1), key);
  EXPECT_TRUE(result.success);
}

TEST_F(ChordTest, MassFailureLosesKeys) {
  join_all();
  util::Rng rng(4);
  std::vector<Key> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(rng());
    ASSERT_TRUE(ring_.store(0, keys.back()));
  }
  // 80% of the ring vanishes between stabilizations: with replication=2
  // some keys must lose both replicas — the churn cost the paper cites.
  for (PeerId p = 0; p < kN; ++p) {
    if (p % 5 != 0) ring_.leave(p);
  }
  std::size_t lost = 0;
  for (const Key key : keys) {
    if (!ring_.key_alive(key)) ++lost;
  }
  EXPECT_GT(lost, 10u);
}

TEST_F(ChordTest, MaintenanceCostsMessages) {
  join_all();
  const std::uint64_t before = ring_.messages();
  ring_.stabilize_round();
  const std::uint64_t per_round = ring_.messages() - before;
  // Every online node probes successors + refreshes fingers: O(n) total.
  EXPECT_GE(per_round, kN);
}

TEST_F(ChordTest, LookupFromOfflineOriginFails) {
  join_all();
  ring_.leave(5);
  const LookupResult result = ring_.lookup(5, 123);
  EXPECT_FALSE(result.success);
}

TEST(ChordEdge, SingleNodeRing) {
  ChordRing ring(4, ChordConfig{}, util::Rng(9));
  ring.join(2);
  EXPECT_EQ(ring.responsible_for(777), 2u);
  EXPECT_TRUE(ring.store(2, 777));
  const LookupResult result = ring.lookup(2, 777);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.hops, 0u);
}

TEST(ChordEdge, EmptyRing) {
  ChordRing ring(4, ChordConfig{}, util::Rng(9));
  EXPECT_EQ(ring.responsible_for(1), kInvalidPeer);
  EXPECT_FALSE(ring.store(0, 1));
  EXPECT_FALSE(ring.lookup(0, 1).success);
  ring.stabilize_round();  // no crash
}

}  // namespace
}  // namespace tribvote::dht
