// Randomized churn stress for the swarm engine: arbitrary interleavings of
// join / deactivate / reactivate / leave / tick must preserve accounting
// invariants and never corrupt state. Parameterized over seeds.
#include <gtest/gtest.h>

#include <map>

#include "bt/swarm.hpp"
#include "bt/transfer_ledger.hpp"

namespace tribvote::bt {
namespace {

class SwarmChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kPeers = 12;

  SwarmChurnProperty() {
    for (PeerId id = 0; id < kPeers; ++id) {
      trace::PeerProfile p;
      p.id = id;
      p.connectable = id % 3 != 0;  // a third firewalled
      p.upload_kbps = 256;
      p.download_kbps = 2048;
      peers_.push_back(p);
    }
    spec_.id = 0;
    spec_.size_mb = 8;
    spec_.piece_kb = 1024;
    spec_.initial_seeder = 0;
    ledger_ = std::make_unique<TransferLedger>(kPeers);
    bandwidth_ = std::make_unique<BandwidthAllocator>(
        std::vector<double>(kPeers, 256.0),
        std::vector<double>(kPeers, 2048.0));
  }

  std::vector<trace::PeerProfile> peers_;
  trace::SwarmSpec spec_;
  std::unique_ptr<TransferLedger> ledger_;
  std::unique_ptr<BandwidthAllocator> bandwidth_;
};

TEST_P(SwarmChurnProperty, InvariantsUnderRandomChurn) {
  util::Rng rng(GetParam());
  Swarm swarm(spec_, peers_, *ledger_, *bandwidth_, rng.derive(1));
  swarm.add_member(0, /*as_seed=*/true);

  std::map<PeerId, double> last_progress;
  std::size_t completions = 0;
  swarm.on_complete = [&](PeerId) { ++completions; };

  for (int op = 0; op < 1200; ++op) {
    const auto peer = static_cast<PeerId>(rng.next_below(kPeers));
    switch (rng.next_below(8)) {
      case 0:
        if (!swarm.is_member(peer)) {
          swarm.add_member(peer, false);
        }
        break;
      case 1:
        swarm.deactivate(peer);
        break;
      case 2:
        if (swarm.is_member(peer)) swarm.reactivate(peer);
        break;
      case 3:
        if (peer != 0) swarm.leave(peer);  // keep the seed's state simple
        break;
      default:
        swarm.tick(10.0);
        break;
    }

    // Invariant: active_count equals the number of active members.
    std::size_t active = 0;
    for (PeerId p = 0; p < kPeers; ++p) {
      if (swarm.is_active(p)) ++active;
      // Active implies member.
      if (swarm.is_active(p)) ASSERT_TRUE(swarm.is_member(p));
      // Progress is monotone for continuous members and within [0, 1].
      const double progress = swarm.progress(p);
      ASSERT_GE(progress, 0.0);
      ASSERT_LE(progress, 1.0);
      if (swarm.is_member(p)) {
        const auto it = last_progress.find(p);
        if (it != last_progress.end()) {
          ASSERT_GE(progress, it->second - 1e-12) << "peer " << p;
        }
        last_progress[p] = progress;
        // Completed members have full bitfields.
        if (swarm.has_completed(p)) ASSERT_DOUBLE_EQ(progress, 1.0);
      } else {
        last_progress.erase(p);
      }
    }
    ASSERT_EQ(active, swarm.active_count());
  }

  // Ledger conservation at the end.
  double up = 0, down = 0;
  for (PeerId p = 0; p < kPeers; ++p) {
    up += ledger_->total_uploaded_mb(p);
    down += ledger_->total_downloaded_mb(p);
  }
  EXPECT_NEAR(up, down, 1e-6);
  // Someone probably completed given 1200 ops; sanity only (no hard bound:
  // extreme churn sequences can starve everyone).
  EXPECT_GE(completions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmChurnProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(SwarmFirewall, TwoFirewalledPeersNeverExchange) {
  // Exhaustive check over many rounds: bytes only ever flow on links with
  // at least one connectable endpoint.
  std::vector<trace::PeerProfile> peers;
  for (PeerId id = 0; id < 6; ++id) {
    trace::PeerProfile p;
    p.id = id;
    p.connectable = id % 2 == 0;
    p.upload_kbps = 512;
    p.download_kbps = 4096;
    peers.push_back(p);
  }
  trace::SwarmSpec spec;
  spec.size_mb = 6;
  spec.piece_kb = 1024;
  spec.initial_seeder = 1;  // firewalled seed
  TransferLedger ledger(6);
  BandwidthAllocator bandwidth(std::vector<double>(6, 512.0),
                               std::vector<double>(6, 4096.0));
  Swarm swarm(spec, peers, ledger, bandwidth, util::Rng(5));
  swarm.add_member(1, true);
  for (PeerId p = 0; p < 6; ++p) {
    if (p != 1) swarm.add_member(p, false);
  }
  for (int round = 0; round < 400; ++round) swarm.tick(10.0);
  for (PeerId a = 0; a < 6; ++a) {
    for (PeerId b = 0; b < 6; ++b) {
      if (a == b) continue;
      if (!peers[a].connectable && !peers[b].connectable) {
        EXPECT_EQ(ledger.uploaded_mb(a, b), 0.0)
            << "firewalled pair " << a << "->" << b;
      }
    }
  }
}

}  // namespace
}  // namespace tribvote::bt
