// EventLoop timers and the EncounterScheduler's failure paths: expiry
// order, cancellation, the no-fd sleep path, same-pass cascade fencing,
// exponential-backoff redial, and connection-table behaviour under
// simultaneous dial/accept. Everything runs single-threaded on one loop —
// the TSan shard exercises these alongside the sharded-runner tests.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/codec.hpp"
#include "net/encounter_scheduler.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/impairment.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace tribvote::net {
namespace {

constexpr int kStepMs = 5000;

// ---- EventLoop timers ------------------------------------------------------

TEST(EventLoopTimers, FireInDueThenIdOrderWithoutAnyFds) {
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_after(30, [&] { fired.push_back(3); });
  loop.schedule_after(0, [&] { fired.push_back(1); });
  loop.schedule_after(0, [&] { fired.push_back(2); });
  ASSERT_TRUE(loop.run_until([&] { return fired.size() == 3; }, kStepMs));
  // Same due time resolves by schedule order (id); a later due fires last
  // — and all of it works with no descriptor registered at all.
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTimers, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const EventLoop::TimerId id = loop.schedule_after(0, [&] { fired = true; });
  EXPECT_EQ(loop.pending_timers(), 1u);
  loop.cancel_timer(id);
  EXPECT_EQ(loop.pending_timers(), 0u);
  loop.poll_once(20);
  EXPECT_FALSE(fired);
}

TEST(EventLoopTimers, CallbackMayCancelAPendingSibling) {
  EventLoop loop;
  bool sibling_fired = false;
  EventLoop::TimerId sibling = 0;
  loop.schedule_after(0, [&] { loop.cancel_timer(sibling); });
  sibling = loop.schedule_after(0, [&] { sibling_fired = true; });
  loop.poll_once(20);
  loop.poll_once(20);
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTimers, TimerScheduledFromCallbackWaitsForNextPass) {
  EventLoop loop;
  int cascade = 0;
  loop.schedule_after(0, [&] {
    ++cascade;
    loop.schedule_after(0, [&] { ++cascade; });
  });
  loop.poll_once(20);
  // The fence: a due-immediately timer armed inside a callback must not
  // run in the same dispatch pass (no unbounded same-pass cascades).
  EXPECT_EQ(cascade, 1);
  loop.poll_once(20);
  EXPECT_EQ(cascade, 2);
}

// ---- scheduler fixtures ----------------------------------------------------

struct SchedNode {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
  std::unique_ptr<NodeService> svc;
  std::unique_ptr<PeerDirectory> dir;
};

SchedNode make_sched_node(EventLoop& loop, PeerId id, std::uint64_t seed,
                          PeerDirectoryConfig dconfig = {}) {
  SchedNode n;
  util::Rng krng(seed);
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  n.svc = std::make_unique<NodeService>(loop, id, *n.keys, *n.vote, nullptr);
  EXPECT_TRUE(n.svc->listen(0));
  n.dir = std::make_unique<PeerDirectory>(id, *n.keys, 0x7f000001u,
                                          n.svc->listen_port(), dconfig,
                                          util::Rng(seed * 7919 + 3));
  return n;
}

// A loopback port with nothing behind it: bind, read the port, close.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(EncounterSchedulerTest, BackoffRedialsThenDirectoryEvictsDeadPeer) {
  EventLoop loop;
  PeerDirectoryConfig dconfig;
  dconfig.max_dial_failures = 3;
  SchedNode a = make_sched_node(loop, 1, 51, dconfig);

  // A descriptor whose address answers with a RST on every dial.
  const std::uint16_t dead = dead_port();
  util::Rng drng(52);
  const crypto::KeyPair dead_keys = crypto::generate_keypair(drng);
  util::Rng srng(53);
  ASSERT_TRUE(a.dir->merge(
      make_descriptor(7, dead_keys, 0x7f000001u, dead, 10, srng), 10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  sconfig.backoff_base_ms = 1;
  sconfig.backoff_max_ms = 4;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.start();
  ASSERT_TRUE(loop.run_until([&] { return a.dir->view_count() == 0; },
                             kStepMs));
  sched.stop();

  // Three failed dials evicted the descriptor; each armed a backoff timer.
  EXPECT_GE(sched.stats().dials, 3u);
  EXPECT_EQ(sched.stats().dial_failures, 3u);
  EXPECT_GE(sched.stats().redials_scheduled, 3u);
  EXPECT_GE(sched.stats().empty_samples, 1u);  // view emptied, rounds go on
}

TEST(EncounterSchedulerTest, SeedBootstrapShufflesAndRunsEncounters) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 61);
  SchedNode b = make_sched_node(loop, 2, 62);
  b.svc->set_directory(b.dir.get(), [] { return Time{0}; });

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.add_seed("127.0.0.1", b.svc->listen_port());
  sched.start();
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.dir->view_count() == 1 && b.dir->view_count() == 1 &&
               a.svc->engine_totals().encounters_completed >= 2;
      },
      kStepMs));
  sched.stop();

  EXPECT_GE(sched.stats().shuffles, 1u);
  EXPECT_GE(sched.stats().vote_encounters, 2u);
  EXPECT_EQ(sched.stats().dial_failures, 0u);
  PeerDescriptor d;
  ASSERT_TRUE(a.dir->lookup(2, d));
  EXPECT_EQ(d.port, b.svc->listen_port());
}

TEST(EncounterSchedulerTest, SimultaneousDialAndAcceptKeepBothTablesSane) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 71);
  SchedNode b = make_sched_node(loop, 2, 72);

  // Each node schedules against a view that already names the other, so
  // both dial in the same rounds — crossing dials race with the accepts
  // they trigger on the other side.
  util::Rng sa(73), sb(74);
  ASSERT_TRUE(a.dir->merge(make_descriptor(2, *b.keys, 0x7f000001u,
                                           b.svc->listen_port(), 10, sb),
                           10));
  ASSERT_TRUE(b.dir->merge(make_descriptor(1, *a.keys, 0x7f000001u,
                                           a.svc->listen_port(), 10, sa),
                           10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched_a(loop, *a.svc, *a.dir, sconfig);
  EncounterScheduler sched_b(loop, *b.svc, *b.dir, sconfig);
  sched_a.start();
  sched_b.start();
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.svc->engine_totals().encounters_completed >= 3 &&
               b.svc->engine_totals().encounters_completed >= 3;
      },
      kStepMs));
  sched_a.stop();
  sched_b.stop();

  // The race must never surface as failures: no dial counted against the
  // directory, no protocol errors, and every open connection is bound to
  // the right peer.
  EXPECT_EQ(sched_a.stats().dial_failures, 0u);
  EXPECT_EQ(sched_b.stats().dial_failures, 0u);
  EXPECT_EQ(a.svc->stats().protocol_errors, 0u);
  EXPECT_EQ(b.svc->stats().protocol_errors, 0u);
  EXPECT_EQ(a.dir->view_count(), 1u);
  EXPECT_EQ(b.dir->view_count(), 1u);
  for (const int c : a.svc->connections()) {
    if (a.svc->ready(c)) {
      EXPECT_EQ(a.svc->peer_of(c), 2u);
    }
  }
  for (const int c : b.svc->connections()) {
    if (b.svc->ready(c)) {
      EXPECT_EQ(b.svc->peer_of(c), 1u);
    }
  }
}

TEST(EncounterSchedulerTest, PeerExitEvictsConnectionButNotDescriptor) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 81);
  SchedNode b = make_sched_node(loop, 2, 82);
  util::Rng sb(83);
  ASSERT_TRUE(a.dir->merge(make_descriptor(2, *b.keys, 0x7f000001u,
                                           b.svc->listen_port(), 10, sb),
                           10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.start();
  ASSERT_TRUE(loop.run_until(
      [&] { return a.svc->engine_totals().encounters_completed >= 1; },
      kStepMs));

  // b slams every connection shut. The established connection's close is
  // not a *dial* failure — the descriptor survives and a redials.
  for (const int c : b.svc->connections()) b.svc->close(c);
  ASSERT_TRUE(loop.run_until(
      [&] { return a.svc->stats().closes >= 1; }, kStepMs));
  EXPECT_EQ(a.dir->view_count(), 1u);
  const std::uint64_t dials_before = sched.stats().dials;
  ASSERT_TRUE(loop.run_until(
      [&] { return sched.stats().dials > dials_before; }, kStepMs));
  sched.stop();
  EXPECT_EQ(sched.stats().dial_failures, 0u);
}

// ---- encounter deadlines: half-open peers must not wedge a slot ------------

/// A listening socket the test drives by hand — the half-open peer.
struct RawServer {
  int listen_fd = -1;
  int peer_fd = -1;

  RawServer() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_EQ(::listen(listen_fd, 4), 0);
  }
  ~RawServer() {
    if (peer_fd >= 0) ::close(peer_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }

  std::uint16_t port() const {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd,
                            reinterpret_cast<sockaddr*>(
                                const_cast<sockaddr_in*>(&addr)),
                            &len),
              0);
    return ntohs(addr.sin_port);
  }

  void accept_one() {
    peer_fd = ::accept(listen_fd, nullptr, nullptr);
    EXPECT_GE(peer_fd, 0);
  }

  void send_frame(const Frame& f) {
    std::vector<std::uint8_t> wire;
    encode_frame(f, wire);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(peer_fd, wire.data() + sent, wire.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }
};

// The PR 9 regression: a peer that completes HELLO and then goes silent
// mid-encounter used to hold its channel slot forever — only the
// progress-deadline watchdog can evict a half-open TCP peer.
TEST(NetDeadlines, SilentMidEncounterPeerIsEvictedNotWedged) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 91);
  a.svc->set_deadlines(/*hello_ms=*/2000, /*encounter_ms=*/50);

  RawServer server;
  const int c = a.svc->connect("127.0.0.1", server.port());
  ASSERT_GE(c, 0);
  ASSERT_TRUE(loop.run_until([&] { return a.svc->open(c); }, kStepMs));
  server.accept_one();

  // The half-open peer answers the HELLO like a healthy node would...
  util::Rng krng(92);
  const crypto::KeyPair peer_keys = crypto::generate_keypair(krng);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.payload = encode_hello({9, peer_keys.pub});
  server.send_frame(hello);
  ASSERT_TRUE(loop.run_until([&] { return a.svc->ready(c); }, kStepMs));

  // ...then never speaks again. The initiated encounter makes no progress,
  // so the deadline must close the connection and free the slot.
  ASSERT_TRUE(a.svc->initiate_vote_encounter(c, 100));
  ASSERT_TRUE(loop.run_until([&] { return !a.svc->open(c); }, kStepMs))
      << "half-open peer wedged the connection slot";
  EXPECT_EQ(a.svc->stats().encounter_timeouts, 1u);
  EXPECT_EQ(a.svc->stats().hello_timeouts, 0u);
  EXPECT_EQ(a.svc->connection_count(), 0u);
}

TEST(NetDeadlines, MissingHelloTimesOutSeparately) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 93);
  a.svc->set_deadlines(/*hello_ms=*/50, /*encounter_ms=*/0);

  RawServer server;  // accepts, never sends a byte
  const int c = a.svc->connect("127.0.0.1", server.port());
  ASSERT_GE(c, 0);
  ASSERT_TRUE(loop.run_until([&] { return !a.svc->open(c); }, kStepMs));
  EXPECT_EQ(a.svc->stats().hello_timeouts, 1u);
  EXPECT_EQ(a.svc->stats().encounter_timeouts, 0u);
  EXPECT_EQ(a.svc->connection_count(), 0u);
}

// ---- scheduler accounting under sustained impairment -----------------------

TEST(EncounterSchedulerTest, ImpairedStallsFeedBackoffAndMatchTimeoutStats) {
  EventLoop loop;
  // Only a's inbound side is impaired: streams stall at random chunks, so
  // some HELLOs die (dial failures) and some established encounters hang
  // until the deadline evicts them (encounter timeouts). The shim is
  // declared before the nodes: ~NodeService detaches its streams from it.
  ImpairConfig icfg;
  icfg.stall_rate = 0.3;
  Impairment impair(icfg, 4242, 1);

  PeerDirectoryConfig dconfig;
  dconfig.max_dial_failures = 1000;  // keep the descriptor; test backoff
  SchedNode a = make_sched_node(loop, 1, 95, dconfig);
  SchedNode b = make_sched_node(loop, 2, 96);
  b.svc->set_directory(b.dir.get(), [] { return Time{0}; });
  a.svc->set_impairment(&impair);
  a.svc->set_deadlines(/*hello_ms=*/100, /*encounter_ms=*/60);

  util::Rng sb(97);
  ASSERT_TRUE(a.dir->merge(make_descriptor(2, *b.keys, 0x7f000001u,
                                           b.svc->listen_port(), 10, sb),
                           10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  sconfig.backoff_base_ms = 1;
  sconfig.backoff_max_ms = 8;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.set_impairment(&impair);
  sched.start();
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.svc->engine_totals().encounters_completed >= 3 &&
               sched.stats().encounter_timeouts >= 1;
      },
      kStepMs))
      << "scheduler never recovered encounters through the stalls";
  sched.stop();

  // The accounting must line up across the layers with nothing counted
  // twice: every established-timeout close the service saw is exactly one
  // scheduler encounter_timeout, every HELLO-phase death exactly one dial
  // failure — and a live-but-sick peer is backed off, never demoted.
  EXPECT_EQ(sched.stats().encounter_timeouts,
            a.svc->stats().encounter_timeouts);
  EXPECT_EQ(sched.stats().dial_failures, a.svc->stats().hello_timeouts);
  EXPECT_GE(sched.stats().redials_scheduled, 1u);
  EXPECT_EQ(a.dir->view_count(), 1u);  // descriptor survived every stall
  EXPECT_EQ(a.dir->quarantined_count(), 0u);
}

}  // namespace
}  // namespace tribvote::net
