// EventLoop timers and the EncounterScheduler's failure paths: expiry
// order, cancellation, the no-fd sleep path, same-pass cascade fencing,
// exponential-backoff redial, and connection-table behaviour under
// simultaneous dial/accept. Everything runs single-threaded on one loop —
// the TSan shard exercises these alongside the sharded-runner tests.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/encounter_scheduler.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace tribvote::net {
namespace {

constexpr int kStepMs = 5000;

// ---- EventLoop timers ------------------------------------------------------

TEST(EventLoopTimers, FireInDueThenIdOrderWithoutAnyFds) {
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_after(30, [&] { fired.push_back(3); });
  loop.schedule_after(0, [&] { fired.push_back(1); });
  loop.schedule_after(0, [&] { fired.push_back(2); });
  ASSERT_TRUE(loop.run_until([&] { return fired.size() == 3; }, kStepMs));
  // Same due time resolves by schedule order (id); a later due fires last
  // — and all of it works with no descriptor registered at all.
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTimers, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const EventLoop::TimerId id = loop.schedule_after(0, [&] { fired = true; });
  EXPECT_EQ(loop.pending_timers(), 1u);
  loop.cancel_timer(id);
  EXPECT_EQ(loop.pending_timers(), 0u);
  loop.poll_once(20);
  EXPECT_FALSE(fired);
}

TEST(EventLoopTimers, CallbackMayCancelAPendingSibling) {
  EventLoop loop;
  bool sibling_fired = false;
  EventLoop::TimerId sibling = 0;
  loop.schedule_after(0, [&] { loop.cancel_timer(sibling); });
  sibling = loop.schedule_after(0, [&] { sibling_fired = true; });
  loop.poll_once(20);
  loop.poll_once(20);
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTimers, TimerScheduledFromCallbackWaitsForNextPass) {
  EventLoop loop;
  int cascade = 0;
  loop.schedule_after(0, [&] {
    ++cascade;
    loop.schedule_after(0, [&] { ++cascade; });
  });
  loop.poll_once(20);
  // The fence: a due-immediately timer armed inside a callback must not
  // run in the same dispatch pass (no unbounded same-pass cascades).
  EXPECT_EQ(cascade, 1);
  loop.poll_once(20);
  EXPECT_EQ(cascade, 2);
}

// ---- scheduler fixtures ----------------------------------------------------

struct SchedNode {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
  std::unique_ptr<NodeService> svc;
  std::unique_ptr<PeerDirectory> dir;
};

SchedNode make_sched_node(EventLoop& loop, PeerId id, std::uint64_t seed,
                          PeerDirectoryConfig dconfig = {}) {
  SchedNode n;
  util::Rng krng(seed);
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  n.svc = std::make_unique<NodeService>(loop, id, *n.keys, *n.vote, nullptr);
  EXPECT_TRUE(n.svc->listen(0));
  n.dir = std::make_unique<PeerDirectory>(id, *n.keys, 0x7f000001u,
                                          n.svc->listen_port(), dconfig,
                                          util::Rng(seed * 7919 + 3));
  return n;
}

// A loopback port with nothing behind it: bind, read the port, close.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(EncounterSchedulerTest, BackoffRedialsThenDirectoryEvictsDeadPeer) {
  EventLoop loop;
  PeerDirectoryConfig dconfig;
  dconfig.max_dial_failures = 3;
  SchedNode a = make_sched_node(loop, 1, 51, dconfig);

  // A descriptor whose address answers with a RST on every dial.
  const std::uint16_t dead = dead_port();
  util::Rng drng(52);
  const crypto::KeyPair dead_keys = crypto::generate_keypair(drng);
  util::Rng srng(53);
  ASSERT_TRUE(a.dir->merge(
      make_descriptor(7, dead_keys, 0x7f000001u, dead, 10, srng), 10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  sconfig.backoff_base_ms = 1;
  sconfig.backoff_max_ms = 4;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.start();
  ASSERT_TRUE(loop.run_until([&] { return a.dir->view_count() == 0; },
                             kStepMs));
  sched.stop();

  // Three failed dials evicted the descriptor; each armed a backoff timer.
  EXPECT_GE(sched.stats().dials, 3u);
  EXPECT_EQ(sched.stats().dial_failures, 3u);
  EXPECT_GE(sched.stats().redials_scheduled, 3u);
  EXPECT_GE(sched.stats().empty_samples, 1u);  // view emptied, rounds go on
}

TEST(EncounterSchedulerTest, SeedBootstrapShufflesAndRunsEncounters) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 61);
  SchedNode b = make_sched_node(loop, 2, 62);
  b.svc->set_directory(b.dir.get(), [] { return Time{0}; });

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.add_seed("127.0.0.1", b.svc->listen_port());
  sched.start();
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.dir->view_count() == 1 && b.dir->view_count() == 1 &&
               a.svc->engine_totals().encounters_completed >= 2;
      },
      kStepMs));
  sched.stop();

  EXPECT_GE(sched.stats().shuffles, 1u);
  EXPECT_GE(sched.stats().vote_encounters, 2u);
  EXPECT_EQ(sched.stats().dial_failures, 0u);
  PeerDescriptor d;
  ASSERT_TRUE(a.dir->lookup(2, d));
  EXPECT_EQ(d.port, b.svc->listen_port());
}

TEST(EncounterSchedulerTest, SimultaneousDialAndAcceptKeepBothTablesSane) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 71);
  SchedNode b = make_sched_node(loop, 2, 72);

  // Each node schedules against a view that already names the other, so
  // both dial in the same rounds — crossing dials race with the accepts
  // they trigger on the other side.
  util::Rng sa(73), sb(74);
  ASSERT_TRUE(a.dir->merge(make_descriptor(2, *b.keys, 0x7f000001u,
                                           b.svc->listen_port(), 10, sb),
                           10));
  ASSERT_TRUE(b.dir->merge(make_descriptor(1, *a.keys, 0x7f000001u,
                                           a.svc->listen_port(), 10, sa),
                           10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched_a(loop, *a.svc, *a.dir, sconfig);
  EncounterScheduler sched_b(loop, *b.svc, *b.dir, sconfig);
  sched_a.start();
  sched_b.start();
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.svc->engine_totals().encounters_completed >= 3 &&
               b.svc->engine_totals().encounters_completed >= 3;
      },
      kStepMs));
  sched_a.stop();
  sched_b.stop();

  // The race must never surface as failures: no dial counted against the
  // directory, no protocol errors, and every open connection is bound to
  // the right peer.
  EXPECT_EQ(sched_a.stats().dial_failures, 0u);
  EXPECT_EQ(sched_b.stats().dial_failures, 0u);
  EXPECT_EQ(a.svc->stats().protocol_errors, 0u);
  EXPECT_EQ(b.svc->stats().protocol_errors, 0u);
  EXPECT_EQ(a.dir->view_count(), 1u);
  EXPECT_EQ(b.dir->view_count(), 1u);
  for (const int c : a.svc->connections()) {
    if (a.svc->ready(c)) {
      EXPECT_EQ(a.svc->peer_of(c), 2u);
    }
  }
  for (const int c : b.svc->connections()) {
    if (b.svc->ready(c)) {
      EXPECT_EQ(b.svc->peer_of(c), 1u);
    }
  }
}

TEST(EncounterSchedulerTest, PeerExitEvictsConnectionButNotDescriptor) {
  EventLoop loop;
  SchedNode a = make_sched_node(loop, 1, 81);
  SchedNode b = make_sched_node(loop, 2, 82);
  util::Rng sb(83);
  ASSERT_TRUE(a.dir->merge(make_descriptor(2, *b.keys, 0x7f000001u,
                                           b.svc->listen_port(), 10, sb),
                           10));

  EncounterSchedulerConfig sconfig;
  sconfig.round_ms = 2;
  EncounterScheduler sched(loop, *a.svc, *a.dir, sconfig);
  sched.start();
  ASSERT_TRUE(loop.run_until(
      [&] { return a.svc->engine_totals().encounters_completed >= 1; },
      kStepMs));

  // b slams every connection shut. The established connection's close is
  // not a *dial* failure — the descriptor survives and a redials.
  for (const int c : b.svc->connections()) b.svc->close(c);
  ASSERT_TRUE(loop.run_until(
      [&] { return a.svc->stats().closes >= 1; }, kStepMs));
  EXPECT_EQ(a.dir->view_count(), 1u);
  const std::uint64_t dials_before = sched.stats().dials;
  ASSERT_TRUE(loop.run_until(
      [&] { return sched.stats().dials > dials_before; }, kStepMs));
  sched.stop();
  EXPECT_EQ(sched.stats().dial_failures, 0u);
}

}  // namespace
}  // namespace tribvote::net
