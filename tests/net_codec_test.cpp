// Wire-format conformance for the net:: plane (PROTOCOL.md).
//
// Covers: CRC-32 vectors, frame encode/parse round trips (including
// byte-at-a-time feeds), header rejection for every malformed field, CRC
// rejection under payload bit flips, codec round trips for every message
// type, strict-decoder rejection (truncation at every length, trailing
// bytes, out-of-range opinions, oversized counts, unsorted delta
// requests), the PR 4 accounting rule that a decoded-but-forged message
// rejects as kBadSignature, and the doc-freshness gate comparing
// codec_abi_digest() against the machine-readable line in PROTOCOL.md.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "crypto/schnorr.hpp"
#include "net/codec.hpp"
#include "net/crc32.hpp"
#include "net/frame.hpp"
#include "vote/agent.hpp"
#include "vote/gossip.hpp"

namespace tribvote::net {
namespace {

// ---- CRC-32 ----------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The standard reflected CRC-32 ("123456789" -> 0xCBF43926).
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  const std::uint32_t base = crc32(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
    EXPECT_NE(crc32(data), base) << "undetected flip at bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
  }
}

// ---- framing ---------------------------------------------------------------

Frame make_frame(FrameType type, std::uint8_t channel,
                 std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = type;
  f.channel = channel;
  f.payload = std::move(payload);
  return f;
}

TEST(FrameLayer, RoundTripsWholeAndByteAtATime) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_frame(FrameType::kVoteFull, 0, {1, 2, 3, 4, 5}), wire);
  encode_frame(make_frame(FrameType::kBye, 1, {}), wire);
  ASSERT_EQ(wire.size(), 2 * kHeaderSize + 5);

  // Whole-buffer feed.
  FrameReader whole;
  whole.feed(wire.data(), wire.size());
  Frame f;
  ASSERT_TRUE(whole.next(f));
  EXPECT_EQ(f.type, FrameType::kVoteFull);
  EXPECT_EQ(f.channel, 0);
  EXPECT_EQ(f.payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  ASSERT_TRUE(whole.next(f));
  EXPECT_EQ(f.type, FrameType::kBye);
  EXPECT_EQ(f.channel, 1);
  EXPECT_TRUE(f.payload.empty());
  EXPECT_FALSE(whole.next(f));
  EXPECT_FALSE(whole.corrupt());
  EXPECT_EQ(whole.pending_bytes(), 0u);
  EXPECT_EQ(whole.stats().frames, 2u);
  EXPECT_EQ(whole.stats().bytes, wire.size());

  // One byte at a time — TCP may fragment arbitrarily.
  FrameReader drip;
  std::size_t popped = 0;
  for (const std::uint8_t b : wire) {
    drip.feed(&b, 1);
    while (drip.next(f)) ++popped;
  }
  EXPECT_EQ(popped, 2u);
  EXPECT_FALSE(drip.corrupt());
}

TEST(FrameLayer, MalformedHeadersAreFatal) {
  std::vector<std::uint8_t> good;
  encode_frame(make_frame(FrameType::kHello, 0, {9, 9}), good);

  struct Case {
    std::size_t offset;
    std::uint8_t value;
    const char* what;
  };
  const Case cases[] = {
      {0, 0x00, "magic0"},    {1, 0x00, "magic1"},
      {2, 0x07, "version"},   {3, 0x7F, "unknown type"},
      {4, 0x02, "channel"},   {5, 0x01, "reserved[0]"},
      {6, 0x01, "reserved[1]"}, {7, 0x01, "reserved[2]"},
      {11, 0xFF, "length > max"},
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> bad = good;
    bad[c.offset] = c.value;
    FrameReader reader;
    reader.feed(bad.data(), bad.size());
    Frame f;
    EXPECT_FALSE(reader.next(f)) << c.what;
    EXPECT_TRUE(reader.corrupt()) << c.what;
    EXPECT_EQ(reader.stats().malformed, 1u) << c.what;
    EXPECT_EQ(reader.stats().checksum_rejects, 0u) << c.what;
    // Sticky: further bytes are ignored.
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next(f)) << c.what;
  }
}

TEST(FrameLayer, PayloadBitFlipsAreChecksumRejects) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_frame(FrameType::kVoteDelta, 1, {10, 20, 30, 40}), wire);
  for (std::size_t i = kHeaderSize; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = wire;
      bad[i] ^= static_cast<std::uint8_t>(1 << bit);
      FrameReader reader;
      reader.feed(bad.data(), bad.size());
      Frame f;
      EXPECT_FALSE(reader.next(f));
      EXPECT_TRUE(reader.corrupt());
      EXPECT_EQ(reader.stats().checksum_rejects, 1u);
      EXPECT_EQ(reader.stats().malformed, 0u);
    }
  }
}

TEST(FrameLayer, IncompleteFrameStaysPending) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_frame(FrameType::kModBatch, 0, {1, 2, 3}), wire);
  FrameReader reader;
  reader.feed(wire.data(), wire.size() - 1);  // one byte short
  Frame f;
  EXPECT_FALSE(reader.next(f));
  EXPECT_FALSE(reader.corrupt());
  EXPECT_GT(reader.pending_bytes(), 0u);  // truncation evidence at close
}

// ---- agent fixtures --------------------------------------------------------

struct Peer {
  crypto::KeyPair keys;
  std::unique_ptr<vote::VoteAgent> agent;
};

Peer make_peer(PeerId id, std::uint64_t seed,
               vote::VoteConfig config = vote::VoteConfig{}) {
  Peer p;
  util::Rng krng(seed);
  p.keys = crypto::generate_keypair(krng);
  p.agent = std::make_unique<vote::VoteAgent>(
      id, p.keys, config, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  return p;
}

vote::VoteListMessage signed_message(Peer& p, std::size_t votes, Time now) {
  for (std::size_t m = 0; m < votes; ++m) {
    p.agent->cast_vote(static_cast<ModeratorId>(100 + m),
                       (m % 2 == 0) ? Opinion::kPositive : Opinion::kNegative,
                       now - static_cast<Time>(m));
  }
  return p.agent->outgoing_votes(now);
}

// ---- codec round trips -----------------------------------------------------

TEST(NetCodec, HelloRoundTrip) {
  const HelloMessage in{42, crypto::PublicKey{0x0123456789ABCDEFULL}};
  HelloMessage out;
  ASSERT_TRUE(decode_hello(encode_hello(in), out));
  EXPECT_EQ(out.peer, in.peer);
  EXPECT_EQ(out.key.y, in.key.y);
}

TEST(NetCodec, EncounterBeginRoundTrip) {
  for (const std::uint8_t kind : {kEncounterVote, kEncounterModeration}) {
    const EncounterBegin in{kind, -123456789};
    EncounterBegin out;
    ASSERT_TRUE(decode_encounter_begin(encode_encounter_begin(in), out));
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.time, in.time);
  }
  EncounterBegin out;
  EXPECT_FALSE(decode_encounter_begin(encode_encounter_begin({2, 5}), out))
      << "unknown encounter kind must be rejected";
}

TEST(NetCodec, VoteFullRoundTripPreservesSignatureValidity) {
  Peer p = make_peer(1, 101);
  const vote::VoteListMessage in = signed_message(p, 7, 1000);
  vote::VoteListMessage out;
  ASSERT_TRUE(decode_vote_full(encode_vote_full(in), out));
  EXPECT_EQ(out.voter, in.voter);
  EXPECT_EQ(out.key.y, in.key.y);
  EXPECT_EQ(out.signature.e, in.signature.e);
  EXPECT_EQ(out.signature.s, in.signature.s);
  ASSERT_EQ(out.votes.size(), in.votes.size());
  for (std::size_t i = 0; i < in.votes.size(); ++i) {
    EXPECT_EQ(out.votes[i].moderator, in.votes[i].moderator);
    EXPECT_EQ(out.votes[i].opinion, in.votes[i].opinion);
    EXPECT_EQ(out.votes[i].cast_at, in.votes[i].cast_at);
  }
  EXPECT_EQ(out.digest(), in.digest());

  // The decoded message must still verify and merge on a receiving agent.
  Peer q = make_peer(2, 102);
  EXPECT_EQ(q.agent->receive_votes(out, 2000),
            vote::ReceiveResult::kAccepted);
}

TEST(NetCodec, VoteDigestRoundTrip) {
  Peer p = make_peer(1, 103);
  const vote::VoteListMessage full = signed_message(p, 5, 1000);
  const vote::VoteDigestMessage in = vote::make_digest(full);
  vote::VoteDigestMessage out;
  ASSERT_TRUE(decode_vote_digest(encode_vote_digest(in), out));
  EXPECT_EQ(out.voter, in.voter);
  EXPECT_EQ(out.key.y, in.key.y);
  EXPECT_EQ(out.checksum, in.checksum);
  ASSERT_EQ(out.entries.size(), in.entries.size());
  for (std::size_t i = 0; i < in.entries.size(); ++i) {
    EXPECT_EQ(out.entries[i].moderator, in.entries[i].moderator);
    EXPECT_EQ(out.entries[i].check, in.entries[i].check);
  }
  EXPECT_TRUE(vote::digest_intact(out));
}

TEST(NetCodec, DeltaRequestRoundTripAndOrderRule) {
  const std::vector<std::size_t> in{0, 3, 4, 17};
  std::vector<std::size_t> out;
  ASSERT_TRUE(decode_delta_request(encode_delta_request(in), out));
  EXPECT_EQ(out, in);
  ASSERT_TRUE(decode_delta_request(encode_delta_request({}), out));
  EXPECT_TRUE(out.empty());

  // Strictly increasing is normative (PROTOCOL.md §4.6): equal or
  // descending neighbours are malformed.
  EXPECT_FALSE(decode_delta_request(encode_delta_request({3, 3}), out));
  EXPECT_FALSE(decode_delta_request(encode_delta_request({5, 2}), out));
}

TEST(NetCodec, VoteDeltaRoundTripCompletesExchange) {
  Peer p = make_peer(1, 104);
  Peer q = make_peer(2, 105);
  const vote::VoteListMessage full = signed_message(p, 6, 1000);
  const vote::VoteDigestMessage digest = vote::make_digest(full);
  const std::vector<std::size_t> missing = q.agent->scan_digest(digest);
  ASSERT_FALSE(missing.empty());
  const vote::VoteDeltaMessage in = p.agent->build_delta(full, missing);

  vote::VoteDeltaMessage out;
  ASSERT_TRUE(decode_vote_delta(encode_vote_delta(in), out));
  EXPECT_EQ(out.voter, in.voter);
  EXPECT_EQ(out.key.y, in.key.y);
  EXPECT_EQ(out.bound_checksum, in.bound_checksum);
  EXPECT_EQ(out.signature.e, in.signature.e);
  EXPECT_EQ(out.signature.s, in.signature.s);
  ASSERT_EQ(out.votes.size(), in.votes.size());

  // A decoded digest + decoded delta must complete the exchange.
  vote::VoteDigestMessage digest2;
  ASSERT_TRUE(decode_vote_digest(encode_vote_digest(digest), digest2));
  EXPECT_EQ(q.agent->receive_delta(digest2, &out, 2000),
            vote::ReceiveResult::kAccepted);
}

TEST(NetCodec, VoxTopKRoundTrip) {
  const vote::RankedList in{9, 3, 7};
  vote::RankedList out;
  ASSERT_TRUE(decode_vox_topk(encode_vox_topk(in), out));
  EXPECT_EQ(out, in);
  ASSERT_TRUE(decode_vox_topk(encode_vox_topk({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(NetCodec, ModBatchRoundTripPreservesSignatureValidity) {
  util::Rng krng(7);
  const crypto::KeyPair keys = crypto::generate_keypair(krng);
  std::vector<moderation::Moderation> in;
  util::Rng sig_rng(8);
  in.push_back(moderation::make_moderation(3, keys, 0xDEADBEEFCAFEULL,
                                           "First torrent \x01 with bytes",
                                           500, sig_rng));
  in.push_back(moderation::make_moderation(3, keys, 0xFEEDULL, "", 501,
                                           sig_rng));
  std::vector<moderation::Moderation> out;
  ASSERT_TRUE(decode_mod_batch(encode_mod_batch(in), out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].moderator, in[i].moderator);
    EXPECT_EQ(out[i].moderator_key.y, in[i].moderator_key.y);
    EXPECT_EQ(out[i].infohash, in[i].infohash);
    EXPECT_EQ(out[i].description, in[i].description);
    EXPECT_EQ(out[i].created, in[i].created);
    EXPECT_EQ(out[i].digest(), in[i].digest());
    EXPECT_TRUE(moderation::verify_moderation(out[i]));
  }
  ASSERT_TRUE(decode_mod_batch(encode_mod_batch({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(NetCodec, PeerExchangeRoundTripPreservesSignatureValidity) {
  util::Rng krng(9);
  const crypto::KeyPair keys = crypto::generate_keypair(krng);
  util::Rng sig_rng(10);
  PeerExchangeMessage in;
  in.reply_requested = true;
  PeerDescriptor d;
  d.peer = 42;
  d.key = keys.pub;
  d.ip = 0x7f000001;
  d.port = 6881;
  d.heartbeat = 123456;
  d.signature = crypto::sign(keys, descriptor_digest(d), sig_rng);
  in.descriptors.push_back(d);
  d.peer = 43;
  d.heartbeat = -7;  // Time is signed; negative stamps must survive
  d.signature = crypto::sign(keys, descriptor_digest(d), sig_rng);
  in.descriptors.push_back(d);

  PeerExchangeMessage out;
  ASSERT_TRUE(decode_peer_exchange(encode_peer_exchange(in), out));
  EXPECT_TRUE(out.reply_requested);
  ASSERT_EQ(out.descriptors.size(), 2u);
  for (std::size_t i = 0; i < in.descriptors.size(); ++i) {
    EXPECT_EQ(out.descriptors[i].peer, in.descriptors[i].peer);
    EXPECT_EQ(out.descriptors[i].key.y, in.descriptors[i].key.y);
    EXPECT_EQ(out.descriptors[i].ip, in.descriptors[i].ip);
    EXPECT_EQ(out.descriptors[i].port, in.descriptors[i].port);
    EXPECT_EQ(out.descriptors[i].heartbeat, in.descriptors[i].heartbeat);
    EXPECT_EQ(descriptor_digest(out.descriptors[i]),
              descriptor_digest(in.descriptors[i]));
    EXPECT_TRUE(crypto::verify(out.descriptors[i].key,
                               descriptor_digest(out.descriptors[i]),
                               out.descriptors[i].signature));
  }

  PeerExchangeMessage empty;
  ASSERT_TRUE(decode_peer_exchange(encode_peer_exchange(empty), out));
  EXPECT_FALSE(out.reply_requested);
  EXPECT_TRUE(out.descriptors.empty());
}

TEST(NetCodecStrict, PeerExchangeRejectsUnknownFlagsAndOversizedCount) {
  PeerExchangeMessage in;
  in.reply_requested = true;
  in.descriptors.push_back(PeerDescriptor{});
  std::vector<std::uint8_t> payload = encode_peer_exchange(in);
  PeerExchangeMessage out;
  ASSERT_TRUE(decode_peer_exchange(payload, out));

  // Any flag bit beyond bit 0 is reserved-zero → malformed.
  std::vector<std::uint8_t> bad_flags = payload;
  bad_flags[0] = 0x03;
  EXPECT_FALSE(decode_peer_exchange(bad_flags, out));

  // count > kMaxPeerDescriptors rejects before any allocation.
  std::vector<std::uint8_t> bad_count = payload;
  bad_count[1] = 0xFF;
  bad_count[2] = 0xFF;  // count = 65535 > 64
  EXPECT_FALSE(decode_peer_exchange(bad_count, out));
}

// ---- strict decoding: truncation, trailing bytes, bad values ---------------

/// Every strict decoder must reject every proper prefix and any payload
/// with a trailing byte — the spec admits exactly one encoding per message.
template <typename Decode>
void expect_exact_length(const std::vector<std::uint8_t>& payload,
                         Decode decode) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::vector<std::uint8_t> cut(payload.begin(),
                                  payload.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode(cut)) << "accepted truncation to " << len << " of "
                              << payload.size() << " bytes";
  }
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decode(padded)) << "accepted trailing byte";
}

TEST(NetCodecStrict, TruncationAndTrailingBytesRejectEverywhere) {
  Peer p = make_peer(1, 106);
  Peer q = make_peer(2, 107);
  const vote::VoteListMessage full = signed_message(p, 4, 1000);
  const vote::VoteDigestMessage digest = vote::make_digest(full);
  const std::vector<std::size_t> missing = q.agent->scan_digest(digest);
  const vote::VoteDeltaMessage delta = p.agent->build_delta(full, missing);
  util::Rng sig_rng(9);
  const std::vector<moderation::Moderation> batch{moderation::make_moderation(
      3, p.keys, 0xABCULL, "desc", 500, sig_rng)};

  expect_exact_length(encode_hello({1, p.keys.pub}), [](const auto& b) {
    HelloMessage m;
    return decode_hello(b, m);
  });
  expect_exact_length(encode_encounter_begin({kEncounterVote, 77}),
                      [](const auto& b) {
                        EncounterBegin m;
                        return decode_encounter_begin(b, m);
                      });
  expect_exact_length(encode_vote_full(full), [](const auto& b) {
    vote::VoteListMessage m;
    return decode_vote_full(b, m);
  });
  expect_exact_length(encode_vote_digest(digest), [](const auto& b) {
    vote::VoteDigestMessage m;
    return decode_vote_digest(b, m);
  });
  expect_exact_length(encode_delta_request({0, 2}), [](const auto& b) {
    std::vector<std::size_t> m;
    return decode_delta_request(b, m);
  });
  expect_exact_length(encode_vote_delta(delta), [](const auto& b) {
    vote::VoteDeltaMessage m;
    return decode_vote_delta(b, m);
  });
  expect_exact_length(encode_vox_topk({4, 5}), [](const auto& b) {
    vote::RankedList m;
    return decode_vox_topk(b, m);
  });
  expect_exact_length(encode_mod_batch(batch), [](const auto& b) {
    std::vector<moderation::Moderation> m;
    return decode_mod_batch(b, m);
  });
  PeerExchangeMessage exchange;
  exchange.descriptors.push_back(PeerDescriptor{});
  exchange.descriptors.push_back(PeerDescriptor{});
  expect_exact_length(encode_peer_exchange(exchange), [](const auto& b) {
    PeerExchangeMessage m;
    return decode_peer_exchange(b, m);
  });
}

TEST(NetCodecStrict, OutOfRangeOpinionRejects) {
  Peer p = make_peer(1, 108);
  const vote::VoteListMessage full = signed_message(p, 1, 1000);
  std::vector<std::uint8_t> payload = encode_vote_full(full);
  // Layout (§4.4): u32 voter, u64 key, u32 count, then entries of
  // u32 moderator + i8 opinion + i64 cast_at. First opinion at offset 20.
  const std::size_t opinion_off = 4 + 8 + 4 + 4;
  ASSERT_LT(opinion_off, payload.size());
  payload[opinion_off] = 0x02;  // not in {-1, 0, 1}
  vote::VoteListMessage out;
  EXPECT_FALSE(decode_vote_full(payload, out));
}

TEST(NetCodecStrict, OversizedCountsReject) {
  // A vote-full header claiming more entries than kMaxVoteEntries must be
  // rejected before any allocation proportional to the claim.
  Peer p = make_peer(1, 109);
  std::vector<std::uint8_t> payload = encode_vote_full(
      signed_message(p, 1, 1000));
  const std::size_t count_off = 4 + 8;
  payload[count_off] = 0xFF;
  payload[count_off + 1] = 0xFF;  // count = 65535 > 4096
  vote::VoteListMessage out;
  EXPECT_FALSE(decode_vote_full(payload, out));

  vote::RankedList topk_out;
  std::vector<std::uint8_t> topk = encode_vox_topk({1});
  topk[0] = 0xFF;  // u16 count = 0x00FF > kMaxTopK
  EXPECT_FALSE(decode_vox_topk(topk, topk_out));
}

// ---- forged-but-well-formed messages: PR 4 accounting ----------------------

TEST(NetCodecStrict, DecodedForgeryRejectsAsBadSignature) {
  // Above the CRC, integrity is the Schnorr signature's job: a bit-damaged
  // message that still *decodes* must land in kBadSignature — the same
  // verdict the simulator's fault plane assigns (fs.vote.rejected role).
  Peer p = make_peer(1, 110);
  Peer q = make_peer(2, 111);
  vote::VoteListMessage msg = signed_message(p, 5, 1000);
  vote::damage_message(msg, vote::WireFault::kCorrupted, 42);

  vote::VoteListMessage decoded;
  ASSERT_TRUE(decode_vote_full(encode_vote_full(msg), decoded));
  EXPECT_EQ(q.agent->receive_votes(decoded, 2000),
            vote::ReceiveResult::kBadSignature);
  EXPECT_EQ(q.agent->ballot_box().size(), 0u);
}

// ---- doc-freshness gate ----------------------------------------------------

TEST(ProtocolDoc, CodecAbiDigestMatchesSpec) {
  // PROTOCOL.md embeds the implementation's ABI digest in a machine-
  // readable line. If this test fails you changed the wire format (or its
  // limits) without updating the spec: fix PROTOCOL.md, then refresh the
  // digest line to the value printed below.
  const std::string path = std::string(TRIBVOTE_SOURCE_DIR) + "/PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();

  char expected[64];
  std::snprintf(expected, sizeof(expected), "<!-- codec-abi: 0x%016llx -->",
                static_cast<unsigned long long>(codec_abi_digest()));
  EXPECT_NE(doc.find(expected), std::string::npos)
      << "PROTOCOL.md is stale: expected the line\n  " << expected
      << "\nUpdate the spec to match the codec change, then refresh the "
         "codec-abi line.";
}

}  // namespace
}  // namespace tribvote::net
