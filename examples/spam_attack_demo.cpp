// Spam-attack demo: a compact version of the paper's §VI-C experiment.
//
// An experienced core is converged on honest moderator M1; a flash crowd of
// Sybil colluders arrives promoting spam moderator M0 through fabricated
// VoxPopuli answers. Watch the three node classes live:
//   * the core is never polluted (the experience function rejects colluder
//     votes, and core nodes are past B_min so they ignore VoxPopuli);
//   * newly arrived normal nodes get polluted during their bootstrap
//     window, then recover once they hold B_min experienced votes.
//
// Build & run:  ./build/examples/spam_attack_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

using namespace tribvote;

int main() {
  trace::GeneratorParams params;
  params.n_peers = 80;
  params.duration = 3 * kDay;
  const trace::Trace tr = trace::generate_trace(params, 2024);

  core::ScenarioConfig config;
  config.attack.crowd_size = 40;  // 2x the 20-node core
  config.attack.start = 0;
  config.attack.duty = 0.5;  // Sybils churn like everyone else
  core::ScenarioRunner runner(tr, config, 99);

  // Pre-converged core: earliest arrivals with mutual history and +M1.
  const auto core = trace::earliest_arrivals(tr, 20);
  const ModeratorId m1 = core.front();
  const ModeratorId m0 = runner.spam_moderator();
  runner.publish_moderation(m1, kMinute, "genuine popular content");
  for (const PeerId a : core) {
    if (a != m1) runner.cast_vote_now(a, m1, Opinion::kPositive);
    for (const PeerId b : core) {
      if (a == b) continue;
      runner.preseed_transfer(a, b, 25.0);
      runner.preload_ballot(a, b, m1, Opinion::kPositive);
    }
  }

  std::printf(
      "core=20 nodes converged on M1 (peer %u); crowd=40 colluders "
      "promoting M0 (peer %u)\n\n",
      m1, m0);
  std::printf("%7s  %12s  %12s  %16s\n", "t(h)", "core->M0", "new->M0",
              "new past B_min");
  runner.sample_every(4 * kHour, [&](Time t) {
    std::vector<vote::RankedList> core_r, fresh_r;
    std::size_t past_bmin = 0, fresh_total = 0;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (!runner.has_arrived(p, t)) continue;
      const bool in_core =
          std::find(core.begin(), core.end(), p) != core.end();
      if (in_core) {
        core_r.push_back(runner.ranking_of(p));
      } else {
        fresh_r.push_back(runner.ranking_of(p));
        ++fresh_total;
        if (!runner.node(p).vote().bootstrapping()) ++past_bmin;
      }
    }
    std::printf("%7.0f  %12.2f  %12.2f  %13zu/%zu\n", to_hours(t),
                metrics::pollution_fraction(core_r, m0),
                metrics::pollution_fraction(fresh_r, m0), past_bmin,
                fresh_total);
  });
  runner.run_until(tr.duration);

  std::printf(
      "\nthe spam crowd wins only against bootstrapping nodes, and only "
      "until they gather B_min=%zu experienced votes.\n",
      config.vote.b_min);
  return 0;
}
