// tribvote_load — drive a listening tribvote_node with back-to-back vote
// encounters and report throughput: encounters/sec and bytes/sec as seen
// from this side's NetStats. Pair with:
//
//   ./tribvote_node --id 1 --seed 1 --listen 0 --casts 2 &
//   ./tribvote_load --connect 127.0.0.1:<port> --id 2 --seed 2 --seconds 5
//
// Each round casts `--casts` scheduled votes before initiating, so after the
// first (full) exchange every encounter exercises the digest/delta path —
// the steady-state hot path whose wire cost PROTOCOL.md §4 fixes.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "crypto/schnorr.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "sim/options.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;
using Clock = std::chrono::steady_clock;

constexpr Time kRoundPeriod = 1000;

int usage() {
  std::fprintf(stderr,
               "usage: tribvote_load --connect HOST:PORT [--id N] [--seed S]"
               " [--seconds X] [--casts K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  PeerId id = 99;
  std::uint64_t seed = 99;
  std::string host;
  std::uint16_t port = 0;
  double seconds = 5.0;
  int casts = 2;

  sim::options::CliFlags cli(argc, argv);
  while (cli.next()) {
    std::uint32_t raw_id = 0;
    if (cli.host_port("--connect", host, port)) {
    } else if (cli.u32("--id", raw_id)) {
      id = static_cast<PeerId>(raw_id);
    } else if (cli.u64("--seed", seed)) {
    } else if (cli.f64("--seconds", seconds)) {
    } else if (cli.i32("--casts", casts)) {
    } else {
      return usage();
    }
  }
  if (cli.error() || host.empty() || port == 0) return usage();
  sim::options::banner("tribvote_load", {{"id", std::to_string(id)},
                                         {"seed", std::to_string(seed)},
                                         {"seconds", std::to_string(seconds)},
                                         {"casts", std::to_string(casts)}});

  util::Rng krng(seed);
  const crypto::KeyPair keys = crypto::generate_keypair(krng);
  vote::VoteAgent agent(id, keys, vote::VoteConfig{},
                        [](PeerId) { return true; },
                        util::Rng(seed * 7919 + 1));

  net::EventLoop loop;
  net::NodeService svc(loop, id, keys, agent, nullptr);
  std::string err;
  const int c = svc.connect(host, port, &err);
  if (c < 0) {
    std::fprintf(stderr, "tribvote_load: connect failed: %s\n", err.c_str());
    return 1;
  }
  if (!loop.run_until([&] { return svc.ready(c); }, 10000)) {
    std::fprintf(stderr, "tribvote_load: handshake timed out\n");
    return 1;
  }

  util::Rng cast_rng(seed ^ 0x10adbeefULL);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(static_cast<long>(seconds * 1000));
  std::uint64_t rounds = 0;
  while (Clock::now() < deadline) {
    const Time now = kRoundPeriod * static_cast<Time>(rounds + 1);
    for (int k = 0; k < casts; ++k) {
      agent.cast_vote(static_cast<ModeratorId>(1 + cast_rng.next_below(24)),
                      cast_rng.next_bool(0.5) ? Opinion::kPositive
                                              : Opinion::kNegative,
                      now - kRoundPeriod + k + 1);
    }
    if (!svc.initiate_vote_encounter(c, now)) break;
    const std::uint64_t want = rounds + 1;
    if (!loop.run_until(
            [&] {
              return svc.initiator_idle(c) &&
                     svc.engine_counters(c)->encounters_completed == want;
            },
            10000)) {
      std::fprintf(stderr, "tribvote_load: encounter %llu timed out\n",
                   static_cast<unsigned long long>(want));
      break;
    }
    ++rounds;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  svc.send_bye(c);
  (void)loop.run_until([&] { return svc.bye_received(c); }, 5000);
  svc.close(c);

  const net::NetStats& s = svc.stats();
  const net::ExchangeEngine::Counters* ec = svc.engine_counters(c);
  std::printf("load encounters %llu\n",
              static_cast<unsigned long long>(rounds));
  std::printf("load seconds %.3f\n", elapsed);
  std::printf("load encounters_per_sec %.1f\n",
              elapsed > 0 ? static_cast<double>(rounds) / elapsed : 0.0);
  std::printf("load bytes_out %llu bytes_in %llu\n",
              static_cast<unsigned long long>(s.bytes_out),
              static_cast<unsigned long long>(s.bytes_in));
  std::printf("load bytes_per_sec %.0f\n",
              elapsed > 0
                  ? static_cast<double>(s.bytes_in + s.bytes_out) / elapsed
                  : 0.0);
  std::printf("load frames_out %llu frames_in %llu\n",
              static_cast<unsigned long long>(s.frames_out),
              static_cast<unsigned long long>(s.frames_in));
  if (ec != nullptr) {
    std::printf("load open_digest %llu open_full %llu\n",
                static_cast<unsigned long long>(ec->open_digest),
                static_cast<unsigned long long>(ec->open_full));
  }
  return 0;
}
