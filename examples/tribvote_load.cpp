// tribvote_load — drive a listening tribvote_node with back-to-back vote
// encounters and report throughput: encounters/sec and bytes/sec as seen
// from this side's NetStats. Pair with:
//
//   ./tribvote_node --id 1 --seed 1 --listen 0 --casts 2 &
//   ./tribvote_load --connect 127.0.0.1:<port> --id 2 --seed 2 --seconds 5
//
// Each round casts `--casts` scheduled votes before initiating, so after the
// first (full) exchange every encounter exercises the digest/delta path —
// the steady-state hot path whose wire cost PROTOCOL.md §4 fixes.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "crypto/schnorr.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;
using Clock = std::chrono::steady_clock;

constexpr Time kRoundPeriod = 1000;

int usage() {
  std::fprintf(stderr,
               "usage: tribvote_load --connect HOST:PORT [--id N] [--seed S]"
               " [--seconds X] [--casts K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  PeerId id = 99;
  std::uint64_t seed = 99;
  std::string host;
  std::uint16_t port = 0;
  double seconds = 5.0;
  int casts = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (i + 1 >= argc) return usage();
    const char* v = argv[++i];
    if (a == "--connect") {
      const std::size_t colon = std::string(v).rfind(':');
      if (colon == std::string::npos) return usage();
      host = std::string(v).substr(0, colon);
      port = static_cast<std::uint16_t>(
          std::strtoul(v + colon + 1, nullptr, 10));
    } else if (a == "--id") {
      id = static_cast<PeerId>(std::strtoul(v, nullptr, 10));
    } else if (a == "--seed") {
      seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--seconds") {
      seconds = std::strtod(v, nullptr);
    } else if (a == "--casts") {
      casts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (host.empty() || port == 0) return usage();

  util::Rng krng(seed);
  const crypto::KeyPair keys = crypto::generate_keypair(krng);
  vote::VoteAgent agent(id, keys, vote::VoteConfig{},
                        [](PeerId) { return true; },
                        util::Rng(seed * 7919 + 1));

  net::EventLoop loop;
  net::NodeService svc(loop, id, keys, agent, nullptr);
  std::string err;
  const int c = svc.connect(host, port, &err);
  if (c < 0) {
    std::fprintf(stderr, "tribvote_load: connect failed: %s\n", err.c_str());
    return 1;
  }
  if (!loop.run_until([&] { return svc.ready(c); }, 10000)) {
    std::fprintf(stderr, "tribvote_load: handshake timed out\n");
    return 1;
  }

  util::Rng cast_rng(seed ^ 0x10adbeefULL);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(static_cast<long>(seconds * 1000));
  std::uint64_t rounds = 0;
  while (Clock::now() < deadline) {
    const Time now = kRoundPeriod * static_cast<Time>(rounds + 1);
    for (int k = 0; k < casts; ++k) {
      agent.cast_vote(static_cast<ModeratorId>(1 + cast_rng.next_below(24)),
                      cast_rng.next_bool(0.5) ? Opinion::kPositive
                                              : Opinion::kNegative,
                      now - kRoundPeriod + k + 1);
    }
    if (!svc.initiate_vote_encounter(c, now)) break;
    const std::uint64_t want = rounds + 1;
    if (!loop.run_until(
            [&] {
              return svc.initiator_idle(c) &&
                     svc.engine_counters(c)->encounters_completed == want;
            },
            10000)) {
      std::fprintf(stderr, "tribvote_load: encounter %llu timed out\n",
                   static_cast<unsigned long long>(want));
      break;
    }
    ++rounds;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  svc.send_bye(c);
  (void)loop.run_until([&] { return svc.bye_received(c); }, 5000);
  svc.close(c);

  const net::NetStats& s = svc.stats();
  const net::ExchangeEngine::Counters* ec = svc.engine_counters(c);
  std::printf("load encounters %llu\n",
              static_cast<unsigned long long>(rounds));
  std::printf("load seconds %.3f\n", elapsed);
  std::printf("load encounters_per_sec %.1f\n",
              elapsed > 0 ? static_cast<double>(rounds) / elapsed : 0.0);
  std::printf("load bytes_out %llu bytes_in %llu\n",
              static_cast<unsigned long long>(s.bytes_out),
              static_cast<unsigned long long>(s.bytes_in));
  std::printf("load bytes_per_sec %.0f\n",
              elapsed > 0
                  ? static_cast<double>(s.bytes_in + s.bytes_out) / elapsed
                  : 0.0);
  std::printf("load frames_out %llu frames_in %llu\n",
              static_cast<unsigned long long>(s.frames_out),
              static_cast<unsigned long long>(s.frames_in));
  if (ec != nullptr) {
    std::printf("load open_digest %llu open_full %llu\n",
                static_cast<unsigned long long>(ec->open_digest),
                static_cast<unsigned long long>(ec->open_full));
  }
  return 0;
}
