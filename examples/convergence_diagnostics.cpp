// Diagnostics: decomposes the Fig. 6 convergence pipeline into its stages
// so you can see which one gates the bootstrap knee:
//
//   moderation spread  →  votes cast  →  votes accepted (experience)
//     →  ballot boxes reach B_min  →  VoxPopuli floods rankings
//
// Prints, on a 3-hour grid: how many scripted voters have voted, the mean
// number of unique accepted voters per ballot box, the number of nodes past
// B_min, the CEV at the configured threshold, and the correct-ordering
// fraction.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/runner.hpp"
#include "metrics/cev.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

using namespace tribvote;

int main() {
  constexpr std::uint64_t kTraceSeed = 42;
  constexpr std::uint64_t kScenarioSeed = 7;
  const trace::Trace tr =
      trace::generate_trace(trace::GeneratorParams{}, kTraceSeed);
  core::ScenarioConfig config;
  // The diagnostics read the "votes cast" and "nodes reached" stages
  // straight off the telemetry registry instead of re-deriving them from
  // per-node state. Counters never perturb the simulation, so the other
  // columns are unchanged by this.
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  core::ScenarioRunner runner(tr, config, kScenarioSeed);
  // Everything needed to reproduce this run from its console output alone.
  std::printf("run: trace-seed=%llu scenario-seed=%llu shards=%zu "
              "threshold=%g\n",
              static_cast<unsigned long long>(kTraceSeed),
              static_cast<unsigned long long>(kScenarioSeed),
              runner.shard_count(), config.experience_threshold_mb);

  // Moderators: the first three nodes entering the system (paper §VI-B).
  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good metadata");
  runner.publish_moderation(m2, 10 * kMinute, "plain metadata");
  runner.publish_moderation(m3, 10 * kMinute, "spammy metadata");

  util::Rng pick(99);
  std::vector<PeerId> voters;
  for (std::size_t v : pick.sample_indices(tr.peers.size(), 20)) {
    const auto voter = static_cast<PeerId>(v);
    if (voter == m1 || voter == m3) continue;
    voters.push_back(voter);
    runner.script_vote_on_receipt(voter, voters.size() % 2 == 0 ? m1 : m3,
                                  voters.size() % 2 == 0
                                      ? Opinion::kPositive
                                      : Opinion::kNegative);
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  std::printf(
      " t(h)  voted  mod-reach  accept/box  >=Bmin  CEV@T   correct\n");
  runner.sample_every(3 * kHour, [&](Time t) {
    // First two stages come from the registry: votes cast (the scripted
    // voters fire exactly one vote each) and nodes reached by any
    // moderation (the exactly-once "mod.nodes_reached" counter).
    const telemetry::Registry& reg = runner.telemetry()->registry();
    const std::uint64_t voted = reg.total_by_name("vote.cast_positive") +
                                reg.total_by_name("vote.cast_negative");
    const std::uint64_t reached = reg.total_by_name("mod.nodes_reached");
    double unique_sum = 0;
    std::size_t past_bmin = 0;
    const std::size_t n = runner.trace_peer_count();
    std::vector<vote::RankedList> rankings;
    for (PeerId p = 0; p < n; ++p) {
      const auto& node = runner.node(p);
      const std::size_t u = node.vote().ballot_box().unique_voters();
      unique_sum += static_cast<double>(u);
      if (u >= config.vote.b_min) ++past_bmin;
      if (p != m1 && p != m2 && p != m3) {
        rankings.push_back(runner.ranking_of(p));
      }
    }
    const double cev =
        runner.collective_experience(config.experience_threshold_mb);
    const double correct = metrics::correct_ordering_fraction(
        rankings, std::span<const ModeratorId>(expected));
    std::printf("%5.0f  %5llu  %9llu  %10.2f  %6zu  %5.3f  %7.2f\n",
                to_hours(t), static_cast<unsigned long long>(voted),
                static_cast<unsigned long long>(reached),
                unique_sum / static_cast<double>(n), past_bmin, cev,
                correct);
  });

  runner.run_until(tr.duration);
  return 0;
}
