// Moderator scoreboard: the "top-K moderators screen" the paper proposes in
// §V-A — a leaderboard of moderators with their estimated share of the
// popular vote, computed from one node's local ballot box. The paper argues
// such a screen psychologically incentivises moderators to produce good
// moderations.
//
// Runs a multi-moderator scenario (8 moderators of varying quality, voters
// reacting to metadata on receipt), then renders the scoreboard as three
// observer nodes see it, next to the global ground truth.
//
// Build & run:  ./build/examples/moderator_scoreboard
#include <cstdio>
#include <map>
#include <vector>

#include "core/runner.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"
#include "vote/ranking.hpp"

using namespace tribvote;

namespace {

void render_scoreboard(const char* title,
                       const std::map<ModeratorId, vote::Tally>& tally) {
  std::printf("\n%s\n", title);
  std::printf("  %4s  %9s  %4s  %4s  %9s\n", "rank", "moderator", "+", "-",
              "vote share");
  const vote::RankedList ranked = rank(tally, vote::RankMethod::kSum);
  std::uint32_t total = 0;
  for (const auto& [m, t] : tally) total += t.total();
  std::size_t position = 1;
  for (const ModeratorId m : ranked) {
    const vote::Tally& t = tally.at(m);
    std::printf("  %4zu  %9u  %4u  %4u  %8.1f%%\n", position++, m,
                t.positive, t.negative,
                total ? 100.0 * t.total() / total : 0.0);
  }
}

}  // namespace

int main() {
  trace::GeneratorParams params;
  params.n_peers = 100;
  params.duration = 4 * kDay;
  const trace::Trace tr = trace::generate_trace(params, 31337);

  core::ScenarioConfig config;
  // Counter telemetry feeds the run-summary footer (votes actually cast,
  // dissemination reach) without re-walking per-node state.
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  core::ScenarioRunner runner(tr, config, 8);

  // Eight moderators of graded quality: moderator q gets a positive vote
  // from (8-q) scripted voters and a negative vote from q voters.
  const auto moderators = trace::earliest_arrivals(tr, 8);
  util::Rng pick(5);
  std::vector<PeerId> pool;
  for (std::size_t v : pick.sample_indices(tr.peers.size(), 72)) {
    const auto peer = static_cast<PeerId>(v);
    if (std::find(moderators.begin(), moderators.end(), peer) ==
        moderators.end()) {
      pool.push_back(peer);
    }
  }
  std::size_t next_voter = 0;
  std::map<ModeratorId, vote::Tally> ground_truth;
  for (std::size_t q = 0; q < moderators.size(); ++q) {
    const ModeratorId m = moderators[q];
    char desc[64];
    std::snprintf(desc, sizeof desc, "release by moderator %u", m);
    runner.publish_moderation(m, 10 * kMinute, desc);
    for (std::size_t vote_i = 0; vote_i < 8 && next_voter < pool.size();
         ++vote_i, ++next_voter) {
      const bool positive = vote_i < 8 - q;
      runner.script_vote_on_receipt(pool[next_voter], m,
                                    positive ? Opinion::kPositive
                                             : Opinion::kNegative);
      if (positive) {
        ++ground_truth[m].positive;
      } else {
        ++ground_truth[m].negative;
      }
    }
  }

  runner.run_until(tr.duration);

  render_scoreboard("GROUND TRUTH (all scripted votes)", ground_truth);
  for (const PeerId observer : {pool.back(), pool[1], pool[2]}) {
    char title[80];
    std::snprintf(title, sizeof title,
                  "AS SEEN BY PEER %u (ballot box: %zu votes from %zu "
                  "unique voters)",
                  observer,
                  runner.node(observer).vote().ballot_box().size(),
                  runner.node(observer).vote().ballot_box().unique_voters());
    render_scoreboard(title,
                      runner.node(observer).vote().ballot_box().tally());
  }
  std::printf(
      "\neach peer's sample is a private opinion poll — rankings agree on "
      "the ordering without any node holding the global count.\n");

  // Run summary off the telemetry registry: how much of the scripted
  // intent actually happened (a scripted vote fires only once the
  // moderation reaches its voter), and how hard dissemination worked.
  const telemetry::Registry& reg = runner.telemetry()->registry();
  std::uint32_t scripted = 0;
  for (const auto& [m, t] : ground_truth) scripted += t.total();
  std::printf("\nrun summary (telemetry registry):\n");
  std::printf("  votes cast: %llu of %u scripted (+%llu / -%llu)\n",
              static_cast<unsigned long long>(
                  reg.total_by_name("vote.cast_positive") +
                  reg.total_by_name("vote.cast_negative")),
              scripted,
              static_cast<unsigned long long>(
                  reg.total_by_name("vote.cast_positive")),
              static_cast<unsigned long long>(
                  reg.total_by_name("vote.cast_negative")));
  std::printf("  moderation: %llu published, %llu deliveries, "
              "%llu nodes reached\n",
              static_cast<unsigned long long>(
                  reg.total_by_name("mod.published")),
              static_cast<unsigned long long>(
                  reg.total_by_name("mod.deliveries")),
              static_cast<unsigned long long>(
                  reg.total_by_name("mod.nodes_reached")));
  std::printf("  exchanges: %llu vote, %llu moderation, %llu barter\n",
              static_cast<unsigned long long>(
                  reg.total_by_name("vote.exchanges")),
              static_cast<unsigned long long>(
                  reg.total_by_name("mod.exchanges")),
              static_cast<unsigned long long>(
                  reg.total_by_name("barter.exchanges")));
  return 0;
}
