// Quickstart: the smallest end-to-end use of the library.
//
// Generates one synthetic 7-day trace (100 peers), sets up the paper's
// Fig. 6 scenario — three moderators M1/M2/M3, 10 % of the population
// voting +M1 and 10 % voting −M3 on receipt of their moderations — runs the
// full protocol stack, and prints how the population's view of the
// moderator ranking converges over time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"

using namespace tribvote;

int main() {
  // 1. A workload: one synthetic trace calibrated to the filelist.org
  //    statistics the paper reports.
  trace::GeneratorParams params;  // defaults: 100 peers, 7 days, 12 swarms
  const trace::Trace tr = trace::generate_trace(params, /*seed=*/42);
  std::printf("trace: %zu peers, %zu sessions, %zu joins, %zu events\n",
              tr.peers.size(), tr.sessions.size(), tr.joins.size(),
              tr.event_count());

  // 2. A scenario: paper defaults (T=5 MB, B_min=5, B_max=100, V_max=10,
  //    K=3), oracle PSS, no attack.
  core::ScenarioConfig config;
  core::ScenarioRunner runner(tr, config, /*seed=*/7);

  // 3. Script the Fig. 6 voting behaviour. Moderators are the first three
  //    arrivals; each publishes one moderation shortly after t = 0.
  // Moderators: the first three nodes entering the system (paper §VI-B).
  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "great 1080p rip");
  runner.publish_moderation(m2, 10 * kMinute, "decent cam version");
  runner.publish_moderation(m3, 10 * kMinute, "totally not a virus");
  util::Rng pick(99);
  const auto voters = pick.sample_indices(tr.peers.size(), 20);
  for (std::size_t v = 0; v < voters.size(); ++v) {
    const auto voter = static_cast<PeerId>(voters[v]);
    if (voter == m1 || voter == m3) continue;
    if (v % 2 == 0) {
      runner.script_vote_on_receipt(voter, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(voter, m3, Opinion::kNegative);
    }
  }

  // 4. Sample the correct-ordering fraction every 6 simulated hours.
  const std::vector<ModeratorId> expected{m1, m2, m3};
  runner.sample_every(6 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
    }
    const double frac = metrics::correct_ordering_fraction(
        rankings, std::span<const ModeratorId>(expected));
    std::printf("t=%6.1fh  correct-ordering=%.2f  online=%zu\n", to_hours(t),
                frac, runner.online_count());
  });

  // 5. Run the full 7 days.
  runner.run_until(tr.duration);

  const auto& st = runner.stats();
  std::printf(
      "\ndone: %llu downloads completed, %llu vote exchanges "
      "(%llu accepted, %llu rejected as inexperienced),\n"
      "      %llu VoxPopuli answers, %llu null responses, "
      "%llu moderation exchanges\n",
      static_cast<unsigned long long>(st.downloads_completed),
      static_cast<unsigned long long>(st.vote_exchanges),
      static_cast<unsigned long long>(st.votes_accepted),
      static_cast<unsigned long long>(st.votes_rejected_inexperienced),
      static_cast<unsigned long long>(st.vp_requests_answered),
      static_cast<unsigned long long>(st.vp_requests_null),
      static_cast<unsigned long long>(st.moderation_exchanges));
  return 0;
}
