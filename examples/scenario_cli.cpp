// scenario_cli — run a vote-sampling scenario from the command line.
//
// Lets downstream users drive the simulator without writing C++: pick a
// trace (synthetic by seed, or a file in the trace schema), a scenario
// (paper defaults, flash-crowd attack, adaptive threshold, Newscast PSS),
// and get the convergence/pollution series on stdout plus a CSV.
//
// Usage:
//   scenario_cli [options]
//     --trace FILE         replay a trace file (default: synthetic)
//     --seed N             generator + scenario seed      (default 1)
//     --peers N            synthetic trace population     (default 100)
//     --days N             synthetic trace length         (default 7)
//     --threshold MB       experience threshold T         (default 5)
//     --adaptive           use the adaptive threshold (§VII)
//     --newscast           gossip PSS instead of the oracle
//     --crowd N            flash-crowd colluders          (default 0)
//     --core N             pre-converged core size        (default 20 if crowd>0)
//     --shards N           population worker shards       (default TRIBVOTE_SHARDS or 1)
//     --ledger NAME        ledger backend map|sharded_log (default TRIBVOTE_LEDGER or map)
//     --gossip-cache on|off  vote-history cache + delta gossip
//                            (default TRIBVOTE_GOSSIP_CACHE or on)
//     --sample HOURS       sampling period                (default 2)
//     --csv FILE           output CSV                     (default scenario_cli.csv)
//     --loss P             per-message-leg drop probability    (default TRIBVOTE_FAULTS or 0)
//     --delay-rate P       reply delay probability             (")
//     --max-delay S        delay bound in seconds              (")
//     --crash-rate P       mid-encounter responder crash prob. (")
//     --corrupt-rate P     payload truncation/corruption prob. (")
//     --impair SPEC        transport chaos spec (DESIGN.md §16), mapped
//                          onto the simulator's fault plane: Gilbert–
//                          Elliott and scheduled partitions natively (the
//                          sim plane speaks both since the adversary PR),
//                          delay->delay-rate, corrupt+truncate->corrupt-
//                          rate, stall->crash-rate. One spec string drives
//                          the A11 sim sweep and the A12 TCP sweep alike
//     --adversary SPEC     adversary-plane roster (DESIGN.md §17), e.g.
//                          "attrition:n=20,rate=4;sybil:n=16,region=4"
//                          (default TRIBVOTE_ADVERSARY or off)
//     --streaming SPEC     streaming-swarm workload: on|off|
//                          "window=8,startup=4,kbps=512"
//                          (default TRIBVOTE_STREAMING or off)
//     --telemetry MODE     off|counters|trace        (default TRIBVOTE_TELEMETRY or off)
//     --trace-out FILE     Chrome-trace JSON output  (default scenario_trace.json when tracing)
//     --telemetry-csv FILE per-round counter CSV     (default: not written)
//
// The TRIBVOTE_* environment knobs (src/sim/options.hpp) provide the
// defaults where noted, so scripted sweeps can steer the CLI the same way
// they steer the figure benches.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "net/impairment.hpp"
#include "sim/options.hpp"
#include "trace/analyzer.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/csv.hpp"

using namespace tribvote;

namespace {

struct Options {
  std::string trace_file;
  std::uint64_t seed = 1;
  std::uint32_t peers = 100;
  int days = 7;
  double threshold_mb = 5.0;
  bool adaptive = false;
  bool newscast = false;
  std::size_t crowd = 0;
  std::size_t core = 0;
  std::size_t shards = sim::options::shards();
  bt::LedgerBackend ledger = sim::options::ledger_backend();
  bool gossip_cache = sim::options::gossip_cache();
  Duration sample = 2 * kHour;
  std::string csv = "scenario_cli.csv";
  sim::FaultConfig faults = sim::options::faults();
  telemetry::TelemetryConfig telemetry = sim::options::telemetry();
  adversary::AdversaryConfig adversary = sim::options::adversary();
  bt::StreamingConfig streaming = sim::options::streaming();
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace FILE] [--seed N] [--peers N] [--days N] "
               "[--threshold MB]\n"
               "          [--adaptive] [--newscast] [--crowd N] [--core N] "
               "[--shards N] [--ledger map|sharded_log] "
               "[--gossip-cache on|off]\n"
               "          [--sample HOURS] [--csv FILE]\n"
               "          [--loss P] [--delay-rate P] [--max-delay S] "
               "[--crash-rate P] [--corrupt-rate P] [--impair SPEC]\n"
               "          [--adversary SPEC] [--streaming SPEC]\n"
               "          [--telemetry off|counters|trace] [--trace-out FILE] "
               "[--telemetry-csv FILE]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--trace")) {
      opt.trace_file = need_value(i);
    } else if (!std::strcmp(arg, "--seed")) {
      opt.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--peers")) {
      opt.peers = static_cast<std::uint32_t>(
          std::strtoul(need_value(i), nullptr, 10));
    } else if (!std::strcmp(arg, "--days")) {
      opt.days = std::atoi(need_value(i));
    } else if (!std::strcmp(arg, "--threshold")) {
      opt.threshold_mb = std::atof(need_value(i));
    } else if (!std::strcmp(arg, "--adaptive")) {
      opt.adaptive = true;
    } else if (!std::strcmp(arg, "--newscast")) {
      opt.newscast = true;
    } else if (!std::strcmp(arg, "--crowd")) {
      opt.crowd = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--core")) {
      opt.core = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--shards")) {
      opt.shards = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--ledger")) {
      const char* name = need_value(i);
      const auto backend = bt::parse_ledger_backend(name);
      if (!backend) {
        std::fprintf(stderr, "unknown ledger backend: %s\n", name);
        usage(argv[0]);
      }
      opt.ledger = *backend;
    } else if (!std::strcmp(arg, "--gossip-cache")) {
      const char* value = need_value(i);
      if (!std::strcmp(value, "on")) {
        opt.gossip_cache = true;
      } else if (!std::strcmp(value, "off")) {
        opt.gossip_cache = false;
      } else {
        std::fprintf(stderr, "bad --gossip-cache (want on|off): %s\n", value);
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--loss") ||
               !std::strcmp(arg, "--delay-rate") ||
               !std::strcmp(arg, "--max-delay") ||
               !std::strcmp(arg, "--crash-rate") ||
               !std::strcmp(arg, "--corrupt-rate")) {
      // Reuse the TRIBVOTE_FAULTS spec parser so the flags and the env
      // knob validate identically.
      std::string spec(arg + 2);
      std::replace(spec.begin(), spec.end(), '-', '_');
      spec += '=';
      spec += need_value(i);
      std::string error;
      if (!sim::parse_fault_spec(spec, opt.faults, &error)) {
        std::fprintf(stderr, "bad %s: %s\n", arg, error.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--impair")) {
      // Validate with the net:: parser, then project the chaos spec onto
      // the sim fault plane so A11-class runs accept the A12 spec string.
      net::ImpairConfig impair;
      std::string error;
      if (!net::parse_impair_spec(need_value(i), impair, &error)) {
        std::fprintf(stderr, "bad %s: %s\n", arg, error.c_str());
        usage(argv[0]);
      }
      // The sim plane speaks Gilbert–Elliott and scheduled partitions
      // natively now, so the chaos spec projects without averaging.
      opt.faults.loss = impair.loss;
      opt.faults.ge_good_to_bad = impair.ge_good_to_bad;
      opt.faults.ge_bad_to_good = impair.ge_bad_to_good;
      opt.faults.ge_loss_good = impair.ge_loss_good;
      opt.faults.ge_loss_bad = impair.ge_loss_bad;
      opt.faults.partition_period = impair.partition_period;
      opt.faults.partition_width = impair.partition_width;
      opt.faults.partition_frac = impair.partition_frac;
      opt.faults.delay_rate = impair.delay_rate;
      opt.faults.corrupt_rate =
          std::min(1.0, impair.corrupt_rate + impair.truncate_rate);
      opt.faults.crash_rate = impair.stall_rate;
    } else if (!std::strcmp(arg, "--adversary")) {
      std::string error;
      opt.adversary = adversary::AdversaryConfig{};  // flag overrides env
      if (!adversary::parse_adversary_spec(need_value(i), opt.adversary,
                                           &error)) {
        std::fprintf(stderr, "bad %s: %s\n", arg, error.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--streaming")) {
      std::string error;
      if (!bt::parse_streaming_spec(need_value(i), opt.streaming, &error)) {
        std::fprintf(stderr, "bad %s: %s\n", arg, error.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--telemetry")) {
      // Reuse the TRIBVOTE_TELEMETRY spec parser; the flag accepts the
      // full spec grammar, so "--telemetry trace,csv=rounds.csv" works.
      std::string error;
      if (!telemetry::parse_telemetry_spec(need_value(i), opt.telemetry,
                                           &error)) {
        std::fprintf(stderr, "bad %s: %s\n", arg, error.c_str());
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--trace-out")) {
      opt.telemetry.trace_out = need_value(i);
    } else if (!std::strcmp(arg, "--telemetry-csv")) {
      opt.telemetry.csv_out = need_value(i);
    } else if (!std::strcmp(arg, "--sample")) {
      opt.sample = static_cast<Duration>(
          std::atof(need_value(i)) * static_cast<double>(kHour));
    } else if (!std::strcmp(arg, "--csv")) {
      opt.csv = need_value(i);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
    }
  }
  if (opt.peers < 5 || opt.days < 1 || opt.sample <= 0 || opt.shards < 1) {
    usage(argv[0]);
  }
  if (opt.crowd > 0 && opt.core == 0) opt.core = 20;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // Workload.
  trace::Trace tr;
  if (!opt.trace_file.empty()) {
    try {
      tr = trace::read_trace_file(opt.trace_file);
    } catch (const trace::TraceFormatError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    trace::GeneratorParams params;
    params.n_peers = opt.peers;
    params.duration = opt.days * kDay;
    tr = trace::generate_trace(params, opt.seed);
  }
  const trace::TraceStats st = trace::analyze(tr);
  std::printf("trace: %zu peers, %zu events, %.0f%% avg online\n",
              st.n_peers, st.n_events, 100 * st.avg_online_fraction);

  // Scenario.
  core::ScenarioConfig config;
  config.experience_threshold_mb = opt.threshold_mb;
  config.adaptive_threshold = opt.adaptive;
  config.pss =
      opt.newscast ? core::PssKind::kNewscast : core::PssKind::kOracle;
  config.attack.crowd_size = opt.crowd;
  config.shards = opt.shards;
  config.ledger = opt.ledger;
  config.vote.gossip_cache = opt.gossip_cache;
  config.faults = opt.faults;
  config.telemetry = opt.telemetry;
  config.adversary = opt.adversary;
  config.streaming = opt.streaming;
  if (config.telemetry.tracing() && config.telemetry.trace_out.empty()) {
    config.telemetry.trace_out = "scenario_trace.json";
  }
  core::ScenarioRunner runner(tr, config, opt.seed ^ 0xC11);
  // Everything needed to reproduce this run from its console output alone,
  // including the effective fault and telemetry configuration.
  std::printf("run: seed=%llu scenario-seed=%llu shards=%zu ledger=%s "
              "gossip_cache=%s threshold=%g pss=%s%s faults=%s "
              "telemetry=%s adversary=%s streaming=%s\n",
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(opt.seed ^ 0xC11),
              runner.shard_count(), bt::ledger_backend_name(opt.ledger),
              opt.gossip_cache ? "on" : "off", opt.threshold_mb,
              opt.newscast ? "newscast" : "oracle",
              opt.adaptive ? " adaptive" : "",
              sim::describe(opt.faults).c_str(),
              telemetry::describe(config.telemetry).c_str(),
              adversary::describe(config.adversary).c_str(),
              bt::describe(config.streaming).c_str());

  // Standard script: three moderators, 20% voters; optional attack core.
  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good release");
  runner.publish_moderation(m2, 10 * kMinute, "plain release");
  runner.publish_moderation(m3, 10 * kMinute, "bad release");
  util::Rng pick(opt.seed ^ 0x7007);
  const auto chosen =
      pick.sample_indices(tr.peers.size(), tr.peers.size() / 5);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto voter = static_cast<PeerId>(chosen[i]);
    if (voter == m1 || voter == m2 || voter == m3) continue;
    runner.script_vote_on_receipt(
        voter, i % 2 == 0 ? m1 : m3,
        i % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }
  std::vector<PeerId> core_set;
  if (opt.crowd > 0) {
    core_set = trace::earliest_arrivals(tr, opt.core);
    for (const PeerId a : core_set) {
      if (a != m1) runner.cast_vote_now(a, m1, Opinion::kPositive);
      for (const PeerId b : core_set) {
        if (a == b) continue;
        runner.preseed_transfer(a, b, 25.0);
        runner.preload_ballot(a, b, m1, Opinion::kPositive);
      }
    }
    std::printf("attack: crowd=%zu colluders vs core=%zu (spam moderator "
                "M0 = peer %u)\n",
                opt.crowd, opt.core, runner.spam_moderator());
  }

  // Metrics.
  util::CsvWriter csv(opt.csv);
  csv.write_row({"t_hours", "correct_ordering", "pollution", "online"});
  const std::vector<ModeratorId> expected{m1, m2, m3};
  std::printf("\n%8s  %16s  %10s  %7s\n", "t(h)", "correct-ordering",
              "pollution", "online");
  runner.sample_every(opt.sample, [&](Time t) {
    std::vector<vote::RankedList> rankings, fresh;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
      if (opt.crowd > 0 && runner.has_arrived(p, t) &&
          std::find(core_set.begin(), core_set.end(), p) ==
              core_set.end()) {
        fresh.push_back(rankings.back());
      }
    }
    const double correct = metrics::correct_ordering_fraction(
        rankings, std::span<const ModeratorId>(expected));
    const double pollution =
        opt.crowd > 0
            ? metrics::pollution_fraction(fresh, runner.spam_moderator())
            : 0.0;
    std::printf("%8.1f  %16.3f  %10.3f  %7zu\n", to_hours(t), correct,
                pollution, runner.online_count());
    csv.field(to_hours(t)).field(correct).field(pollution);
    csv.field(static_cast<long long>(runner.online_count()));
    csv.end_row();
  });

  runner.run_until(tr.duration);
  std::printf("\ncsv written: %s\n", opt.csv.c_str());

  if (runner.adversary() != nullptr) {
    const adversary::AdversaryStats as = runner.adversary_stats();
    std::printf("adversary: floods=%llu (rejected=%llu) nuisance_flips=%llu "
                "credit_transfers=%llu credit_mb=%.0f presence_flips=%llu\n",
                static_cast<unsigned long long>(as.floods_sent),
                static_cast<unsigned long long>(as.flood_rejected),
                static_cast<unsigned long long>(as.nuisance_flips),
                static_cast<unsigned long long>(as.credit_transfers),
                as.credit_mb,
                static_cast<unsigned long long>(as.presence_flips));
  }
  if (config.streaming.enabled) {
    const bt::StreamingTotals stot = runner.streaming_totals();
    const std::uint64_t played = stot.pieces_on_time + stot.deadline_misses;
    std::printf("streaming: started=%llu finished=%llu on_time=%llu "
                "misses=%llu (miss rate %.3f)\n",
                static_cast<unsigned long long>(stot.started),
                static_cast<unsigned long long>(stot.finished),
                static_cast<unsigned long long>(stot.pieces_on_time),
                static_cast<unsigned long long>(stot.deadline_misses),
                played > 0 ? static_cast<double>(stot.deadline_misses) /
                                 static_cast<double>(played)
                           : 0.0);
  }

  // Telemetry exports — the harness writes files, never the runner.
  if (telemetry::Telemetry* tel = runner.telemetry()) {
    if (tel->tracing() && !tel->config().trace_out.empty()) {
      if (tel->write_chrome_trace(tel->config().trace_out)) {
        std::printf("trace written: %s (%zu spans)\n",
                    tel->config().trace_out.c_str(), tel->trace().size());
      } else {
        std::fprintf(stderr, "error: could not write %s\n",
                     tel->config().trace_out.c_str());
        return 1;
      }
    }
    if (!tel->config().csv_out.empty()) {
      if (tel->write_round_csv(tel->config().csv_out)) {
        std::printf("telemetry csv written: %s (%zu rounds)\n",
                    tel->config().csv_out.c_str(), tel->round_samples());
      } else {
        std::fprintf(stderr, "error: could not write %s\n",
                     tel->config().csv_out.c_str());
        return 1;
      }
    }
    std::printf("telemetry: vote.exchanges=%llu mod.deliveries=%llu "
                "bt.pieces_completed=%llu\n",
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("vote.exchanges")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("mod.deliveries")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("bt.pieces_completed")));
    std::printf("gossip: bytes_sent=%llu full=%llu delta=%llu "
                "fallbacks=%llu cache_hits=%llu signatures=%llu\n",
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.bytes_sent")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.full_exchanges")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.delta_exchanges")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.digest_fallbacks")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.cache_hits")),
                static_cast<unsigned long long>(
                    tel->registry().total_by_name("gossip.signatures")));
  }
  return 0;
}
