// tribvote_cluster — N-node round-barrier equivalence harness for the
// multi-peer runtime (PROTOCOL.md §8, DESIGN.md §14). One schedule, two
// executions:
//
//   --mode oracle   N in-process agents, each sampling counterparts through
//                   its own pss::OraclePss over a fully-online
//                   OnlineDirectory; encounters run through sim::ShardKernel
//                   (--shards) — the simulator's own path
//   --mode tcp      N NodeServices on one EventLoop: every node's Newscast
//                   PeerDirectory is bootstrapped from node 0 with real
//                   PEER_EXCHANGE frames, then each round's encounters run
//                   serially over real sockets in sequence order
//
// Both modes apply the same scripted casts (id order, before each round),
// sample every node in id order through the shared pss::PeerSampler API,
// and execute the round's encounter list in the serial order ShardKernel
// reproduces at any shard count. PeerDirectory::sample replays the oracle
// draw sequence at full membership and keeps its signature nonces on a
// separate rng stream, so the per-node state digests of the two modes must
// match byte for byte — scripts/cluster_smoke.sh and CI diff the
// --state-out files (oracle shards 1 vs 4 vs tcp).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "pss/oracle.hpp"
#include "pss/online_directory.hpp"
#include "pss/peer_sampler.hpp"
#include "sim/options.hpp"
#include "sim/shard_kernel.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;

struct Options {
  std::string mode = "oracle";
  std::size_t nodes = 8;
  int rounds = 8;
  int casts = 2;
  std::uint64_t seed = 42;
  std::size_t shards = 1;
  std::string state_out;
};

constexpr Time kRoundPeriod = 1000;

Time round_time(int round) { return kRoundPeriod * (round + 1); }

// Per-node seed, derived so the cluster is a pure function of --seed.
std::uint64_t node_seed(const Options& opt, PeerId id) {
  return opt.seed * 1000003ULL + id;
}

// The agent (and later the NodeService/PeerDirectory) hold the KeyPair by
// reference, so it must stay put while Node values move through the vector
// — hence the unique_ptr.
struct Node {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
};

Node make_node(PeerId id, std::uint64_t seed) {
  Node n;
  util::Rng krng(seed);
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  return n;
}

// The scripted casts node `id` applies before round `round` — same
// derivation tribvote_node's scripted modes use.
void apply_casts(vote::VoteAgent& agent, std::uint64_t seed, int round,
                 int casts) {
  constexpr std::uint64_t kMix = 0x9e3779b97f4a7c15ULL;
  util::Rng rng(seed ^ (kMix * static_cast<std::uint64_t>(round + 1)));
  const Time base = round_time(round) - kRoundPeriod;
  for (int i = 0; i < casts; ++i) {
    const auto mod = static_cast<ModeratorId>(1 + rng.next_below(24));
    const Opinion op =
        rng.next_bool(0.5) ? Opinion::kPositive : Opinion::kNegative;
    agent.cast_vote(mod, op, base + i + 1);
  }
}

// The mode-invariant state report CI diffs between oracle and tcp runs.
void report_state(std::FILE* f, const std::vector<Node>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::fprintf(f, "node %zu digest 0x%016llx ballots %zu unique_voters %zu\n",
                 i,
                 static_cast<unsigned long long>(nodes[i].vote->state_digest()),
                 nodes[i].vote->ballot_box().size(),
                 nodes[i].vote->ballot_box().unique_voters());
  }
}

int write_reports(const Options& opt, const std::vector<Node>& nodes) {
  report_state(stdout, nodes);
  if (!opt.state_out.empty()) {
    std::FILE* f = std::fopen(opt.state_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "tribvote_cluster: cannot write %s\n",
                   opt.state_out.c_str());
      return 1;
    }
    report_state(f, nodes);
    std::fclose(f);
  }
  return 0;
}

/// Runs the shared schedule: per round, casts in id order, then one sample
/// per node in id order through the PeerSampler API, then `execute` applies
/// the encounter list. Returns encounters executed, or -1 on failure.
template <typename ExecuteRound>
long run_schedule(const Options& opt, std::vector<Node>& nodes,
                  const std::vector<pss::PeerSampler*>& samplers,
                  const ExecuteRound& execute) {
  long executed = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      apply_casts(*nodes[i].vote, node_seed(opt, static_cast<PeerId>(i)), r,
                  opt.casts);
    }
    std::vector<sim::Encounter> encounters;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto self = static_cast<PeerId>(i);
      const PeerId target = samplers[i]->sample(self);
      if (target == kInvalidPeer) continue;
      sim::Encounter e;
      e.seq = static_cast<std::uint32_t>(encounters.size());
      e.initiator = self;
      e.responder = target;
      encounters.push_back(e);
    }
    if (!execute(encounters, round_time(r))) return -1;
    executed += static_cast<long>(encounters.size());
  }
  return executed;
}

int run_oracle(const Options& opt) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    nodes.push_back(make_node(id, node_seed(opt, id)));
  }
  pss::OnlineDirectory directory(opt.nodes);
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    directory.set_online(static_cast<PeerId>(i), true);
  }
  // Each node's sampler draws from the same derived stream its
  // PeerDirectory would use in tcp mode — the identity's hinge.
  std::vector<std::unique_ptr<pss::OraclePss>> oracles;
  std::vector<pss::PeerSampler*> samplers;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    util::Rng base(node_seed(opt, static_cast<PeerId>(i)) * 7919 + 3);
    oracles.push_back(std::make_unique<pss::OraclePss>(
        directory, base.derive(net::PeerDirectory::kSampleStream)));
    samplers.push_back(oracles.back().get());
  }

  sim::ShardKernel kernel(opt.nodes, opt.shards, nullptr);
  const long executed = run_schedule(
      opt, nodes, samplers,
      [&](const std::vector<sim::Encounter>& encounters, Time now) {
        kernel.run_round(encounters,
                         [&](const sim::Encounter& e, std::size_t) {
                           vote::vote_exchange(*nodes[e.initiator].vote,
                                               *nodes[e.responder].vote, now);
                         });
        return true;
      });
  if (executed < 0) return 1;
  std::fprintf(stderr, "tribvote_cluster: oracle executed %ld encounters "
                       "(%llu levels, shards %zu)\n",
               executed,
               static_cast<unsigned long long>(kernel.stats().levels),
               opt.shards);
  return write_reports(opt, nodes);
}

constexpr int kStepMs = 10000;  ///< per-condition wait budget

// "a.b.c.d" from a descriptor's host-order ip word.
std::string ip_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

int run_tcp(const Options& opt) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    nodes.push_back(make_node(id, node_seed(opt, id)));
  }

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::NodeService>> svcs;
  std::vector<std::unique_ptr<net::PeerDirectory>> dirs;
  net::PeerDirectoryConfig dcfg;
  // Full membership must fit: the digest identity needs every node in every
  // view, and one bootstrap reply from node 0 must carry them all.
  dcfg.view_size = std::max<std::size_t>(dcfg.view_size, opt.nodes);
  dcfg.shuffle_size =
      std::min<std::size_t>(net::kMaxPeerDescriptors,
                            std::max(dcfg.shuffle_size, opt.nodes));
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    svcs.push_back(std::make_unique<net::NodeService>(
        loop, id, *nodes[i].keys, *nodes[i].vote, nullptr));
    std::string err;
    if (!svcs[i]->listen(0, &err)) {
      std::fprintf(stderr, "tribvote_cluster: node %zu listen failed: %s\n",
                   i, err.c_str());
      return 1;
    }
    dirs.push_back(std::make_unique<net::PeerDirectory>(
        id, *nodes[i].keys, 0x7f000001u, svcs[i]->listen_port(), dcfg,
        util::Rng(node_seed(opt, id) * 7919 + 3)));
    // Bootstrap happens before round 0; protocol time starts at 0.
    svcs[i]->set_directory(dirs[i].get(), [] { return Time{0}; });
  }

  // Bootstrap: everyone dials node 0 and pumps reply-requested shuffles at
  // it until every directory holds full membership. Two pumps suffice
  // (first registers every node with 0, second pulls 0's complete view),
  // but the loop is bounded generously rather than exactly.
  std::vector<int> seed_conns(opt.nodes, -1);
  for (std::size_t i = 1; i < opt.nodes; ++i) {
    std::string err;
    seed_conns[i] = svcs[i]->connect("127.0.0.1", svcs[0]->listen_port(),
                                     &err);
    if (seed_conns[i] < 0) {
      std::fprintf(stderr, "tribvote_cluster: node %zu dial failed: %s\n", i,
                   err.c_str());
      return 1;
    }
  }
  const auto all_ready = [&] {
    for (std::size_t i = 1; i < opt.nodes; ++i) {
      if (!svcs[i]->ready(seed_conns[i])) return false;
    }
    return true;
  };
  if (!loop.run_until(all_ready, kStepMs)) {
    std::fprintf(stderr, "tribvote_cluster: bootstrap HELLOs timed out\n");
    return 1;
  }
  const auto full_membership = [&] {
    for (const auto& d : dirs) {
      if (d->view_count() != opt.nodes - 1) return false;
    }
    return true;
  };
  for (int pump = 0; pump < 20 && !full_membership(); ++pump) {
    for (std::size_t i = 1; i < opt.nodes; ++i) {
      (void)svcs[i]->send_peer_exchange(seed_conns[i], true);
    }
    (void)loop.run_until(full_membership, 250);
  }
  if (!full_membership()) {
    std::fprintf(stderr,
                 "tribvote_cluster: views never reached full membership\n");
    return 1;
  }

  // One encounter over real sockets, driven to completion — the serial
  // execution order ShardKernel's level schedule is provably equivalent to.
  const auto run_encounter = [&](PeerId initiator, PeerId responder,
                                 Time now) {
    net::NodeService& svc = *svcs[initiator];
    int conn = svc.conn_for_peer(responder);
    if (conn < 0) {
      net::PeerDescriptor d;
      if (!dirs[initiator]->lookup(responder, d)) return false;
      conn = svc.connect(ip_string(d.ip), d.port);
      if (conn < 0) return false;
      if (!loop.run_until([&] { return svc.ready(conn); }, kStepMs)) {
        return false;
      }
    }
    const std::uint64_t want =
        svc.engine_counters(conn)->encounters_completed + 1;
    if (!svc.initiate_vote_encounter(conn, now)) return false;
    return loop.run_until(
        [&] {
          return svc.initiator_idle(conn) &&
                 svc.engine_counters(conn)->encounters_completed >= want;
        },
        kStepMs);
  };

  std::vector<pss::PeerSampler*> samplers;
  for (const auto& d : dirs) samplers.push_back(d.get());
  const long executed = run_schedule(
      opt, nodes, samplers,
      [&](const std::vector<sim::Encounter>& encounters, Time now) {
        for (const sim::Encounter& e : encounters) {
          if (!run_encounter(e.initiator, e.responder, now)) {
            std::fprintf(stderr,
                         "tribvote_cluster: encounter %u -> %u failed\n",
                         e.initiator, e.responder);
            return false;
          }
        }
        return true;
      });
  if (executed < 0) return 1;

  for (const auto& svc : svcs) {
    for (const int c : svc->connections()) svc->send_bye(c);
  }
  loop.poll_once(0);  // best-effort flush of the BYEs

  std::uint64_t frames = 0, px_in = 0;
  for (const auto& svc : svcs) {
    frames += svc->stats().frames_in;
    px_in += svc->stats().peer_exchanges_in;
  }
  std::fprintf(stderr, "tribvote_cluster: tcp executed %ld encounters "
                       "(%llu frames_in, %llu peer_exchanges_in)\n",
               executed, static_cast<unsigned long long>(frames),
               static_cast<unsigned long long>(px_in));
  return write_reports(opt, nodes);
}

int usage() {
  std::fprintf(stderr,
               "usage: tribvote_cluster --mode oracle|tcp [--nodes N]"
               " [--rounds R] [--casts K] [--seed S] [--shards M]"
               " [--state-out F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  sim::options::CliFlags cli(argc, argv);
  while (cli.next()) {
    if (cli.value("--mode", opt.mode)) {
    } else if (cli.size("--nodes", opt.nodes)) {
    } else if (cli.i32("--rounds", opt.rounds)) {
    } else if (cli.i32("--casts", opt.casts)) {
    } else if (cli.u64("--seed", opt.seed)) {
    } else if (cli.size("--shards", opt.shards)) {
    } else if (cli.value("--state-out", opt.state_out)) {
    } else {
      return usage();
    }
  }
  if (cli.error() || opt.nodes < 2 || opt.rounds < 0 || opt.shards < 1 ||
      (opt.mode != "oracle" && opt.mode != "tcp")) {
    return usage();
  }
  sim::options::banner("tribvote_cluster",
                       {{"mode", opt.mode},
                        {"nodes", std::to_string(opt.nodes)},
                        {"rounds", std::to_string(opt.rounds)},
                        {"casts", std::to_string(opt.casts)},
                        {"seed", std::to_string(opt.seed)},
                        {"shards", std::to_string(opt.shards)}});
  return opt.mode == "oracle" ? run_oracle(opt) : run_tcp(opt);
}
