// tribvote_cluster — N-node round-barrier equivalence harness for the
// multi-peer runtime (PROTOCOL.md §8, DESIGN.md §14). One schedule, two
// executions:
//
//   --mode oracle   N in-process agents, each sampling counterparts through
//                   its own pss::OraclePss over a fully-online
//                   OnlineDirectory; encounters run through sim::ShardKernel
//                   (--shards) — the simulator's own path
//   --mode tcp      N NodeServices on one EventLoop: every node's Newscast
//                   PeerDirectory is bootstrapped from node 0 with real
//                   PEER_EXCHANGE frames, then each round's encounters run
//                   serially over real sockets in sequence order
//
// Both modes apply the same scripted casts (id order, before each round),
// sample every node in id order through the shared pss::PeerSampler API,
// and execute the round's encounter list in the serial order ShardKernel
// reproduces at any shard count. PeerDirectory::sample replays the oracle
// draw sequence at full membership and keeps its signature nonces on a
// separate rng stream, so the per-node state digests of the two modes must
// match byte for byte — scripts/cluster_smoke.sh and CI diff the
// --state-out files (oracle shards 1 vs 4 vs tcp).
//
// --impair SPEC (tcp mode) threads every node's inbound byte stream
// through a net::Impairment keyed off the cluster seed and arms the
// encounter deadlines. Resets and stalls are then expected events: the
// bootstrap pump redials dead seed connections and each encounter retries
// through reconnects (vote merges are idempotent, so a half-finished
// exchange redone from scratch converges to the same state). The schedule
// — and therefore the byte streams and every verdict — stays a pure
// function of (--seed, --impair), which is why CI can diff two impaired
// runs against each other.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/event_loop.hpp"
#include "net/impairment.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "pss/oracle.hpp"
#include "pss/online_directory.hpp"
#include "pss/peer_sampler.hpp"
#include "sim/options.hpp"
#include "sim/shard_kernel.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;

struct Options {
  std::string mode = "oracle";
  std::size_t nodes = 8;
  int rounds = 8;
  int casts = 2;
  std::uint64_t seed = 42;
  std::size_t shards = 1;
  std::string state_out;
  std::string impair_spec;  // tcp mode only; empty = pristine transport
};

constexpr Time kRoundPeriod = 1000;

Time round_time(int round) { return kRoundPeriod * (round + 1); }

// Per-node seed, derived so the cluster is a pure function of --seed.
std::uint64_t node_seed(const Options& opt, PeerId id) {
  return opt.seed * 1000003ULL + id;
}

// The agent (and later the NodeService/PeerDirectory) hold the KeyPair by
// reference, so it must stay put while Node values move through the vector
// — hence the unique_ptr.
struct Node {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
};

Node make_node(PeerId id, std::uint64_t seed) {
  Node n;
  util::Rng krng(seed);
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  return n;
}

// The scripted casts node `id` applies before round `round` — same
// derivation tribvote_node's scripted modes use.
void apply_casts(vote::VoteAgent& agent, std::uint64_t seed, int round,
                 int casts) {
  constexpr std::uint64_t kMix = 0x9e3779b97f4a7c15ULL;
  util::Rng rng(seed ^ (kMix * static_cast<std::uint64_t>(round + 1)));
  const Time base = round_time(round) - kRoundPeriod;
  for (int i = 0; i < casts; ++i) {
    const auto mod = static_cast<ModeratorId>(1 + rng.next_below(24));
    const Opinion op =
        rng.next_bool(0.5) ? Opinion::kPositive : Opinion::kNegative;
    agent.cast_vote(mod, op, base + i + 1);
  }
}

// The mode-invariant state report CI diffs between oracle and tcp runs.
void report_state(std::FILE* f, const std::vector<Node>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::fprintf(f, "node %zu digest 0x%016llx ballots %zu unique_voters %zu\n",
                 i,
                 static_cast<unsigned long long>(nodes[i].vote->state_digest()),
                 nodes[i].vote->ballot_box().size(),
                 nodes[i].vote->ballot_box().unique_voters());
  }
}

int write_reports(const Options& opt, const std::vector<Node>& nodes) {
  report_state(stdout, nodes);
  if (!opt.state_out.empty()) {
    std::FILE* f = std::fopen(opt.state_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "tribvote_cluster: cannot write %s\n",
                   opt.state_out.c_str());
      return 1;
    }
    report_state(f, nodes);
    std::fclose(f);
  }
  return 0;
}

/// Runs the shared schedule: per round, casts in id order, then one sample
/// per node in id order through the PeerSampler API, then `execute` applies
/// the encounter list. Returns encounters executed, or -1 on failure.
template <typename ExecuteRound>
long run_schedule(const Options& opt, std::vector<Node>& nodes,
                  const std::vector<pss::PeerSampler*>& samplers,
                  const ExecuteRound& execute) {
  long executed = 0;
  for (int r = 0; r < opt.rounds; ++r) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      apply_casts(*nodes[i].vote, node_seed(opt, static_cast<PeerId>(i)), r,
                  opt.casts);
    }
    std::vector<sim::Encounter> encounters;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto self = static_cast<PeerId>(i);
      const PeerId target = samplers[i]->sample(self);
      if (target == kInvalidPeer) continue;
      sim::Encounter e;
      e.seq = static_cast<std::uint32_t>(encounters.size());
      e.initiator = self;
      e.responder = target;
      encounters.push_back(e);
    }
    if (!execute(encounters, round_time(r))) return -1;
    executed += static_cast<long>(encounters.size());
  }
  return executed;
}

int run_oracle(const Options& opt) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    nodes.push_back(make_node(id, node_seed(opt, id)));
  }
  pss::OnlineDirectory directory(opt.nodes);
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    directory.set_online(static_cast<PeerId>(i), true);
  }
  // Each node's sampler draws from the same derived stream its
  // PeerDirectory would use in tcp mode — the identity's hinge.
  std::vector<std::unique_ptr<pss::OraclePss>> oracles;
  std::vector<pss::PeerSampler*> samplers;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    util::Rng base(node_seed(opt, static_cast<PeerId>(i)) * 7919 + 3);
    oracles.push_back(std::make_unique<pss::OraclePss>(
        directory, base.derive(net::PeerDirectory::kSampleStream)));
    samplers.push_back(oracles.back().get());
  }

  sim::ShardKernel kernel(opt.nodes, opt.shards, nullptr);
  const long executed = run_schedule(
      opt, nodes, samplers,
      [&](const std::vector<sim::Encounter>& encounters, Time now) {
        kernel.run_round(encounters,
                         [&](const sim::Encounter& e, std::size_t) {
                           vote::vote_exchange(*nodes[e.initiator].vote,
                                               *nodes[e.responder].vote, now);
                         });
        return true;
      });
  if (executed < 0) return 1;
  std::fprintf(stderr, "tribvote_cluster: oracle executed %ld encounters "
                       "(%llu levels, shards %zu)\n",
               executed,
               static_cast<unsigned long long>(kernel.stats().levels),
               opt.shards);
  return write_reports(opt, nodes);
}

constexpr int kStepMs = 10000;  ///< per-condition wait budget

// "a.b.c.d" from a descriptor's host-order ip word.
std::string ip_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

int run_tcp(const Options& opt) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    nodes.push_back(make_node(id, node_seed(opt, id)));
  }

  net::ImpairConfig icfg;
  std::string ierr;
  if (!opt.impair_spec.empty() &&
      !net::parse_impair_spec(opt.impair_spec, icfg, &ierr)) {
    std::fprintf(stderr, "tribvote_cluster: bad --impair spec: %s\n",
                 ierr.c_str());
    return 2;
  }
  const bool impaired = icfg.enabled();

  net::EventLoop loop;
  // Every node's shim shares the *cluster* seed, so the partition
  // schedule — keyed (seed, window, node) — is agreed on by all of them.
  // Declared before the services: ~NodeService detaches its streams from
  // the shim, so the shim must outlive it.
  std::vector<std::unique_ptr<net::Impairment>> impairs;
  std::vector<std::unique_ptr<net::NodeService>> svcs;
  std::vector<std::unique_ptr<net::PeerDirectory>> dirs;
  net::PeerDirectoryConfig dcfg;
  // Full membership must fit: the digest identity needs every node in every
  // view, and one bootstrap reply from node 0 must carry them all.
  dcfg.view_size = std::max<std::size_t>(dcfg.view_size, opt.nodes);
  dcfg.shuffle_size =
      std::min<std::size_t>(net::kMaxPeerDescriptors,
                            std::max(dcfg.shuffle_size, opt.nodes));
  for (std::size_t i = 0; i < opt.nodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    svcs.push_back(std::make_unique<net::NodeService>(
        loop, id, *nodes[i].keys, *nodes[i].vote, nullptr));
    std::string err;
    if (!svcs[i]->listen(0, &err)) {
      std::fprintf(stderr, "tribvote_cluster: node %zu listen failed: %s\n",
                   i, err.c_str());
      return 1;
    }
    dirs.push_back(std::make_unique<net::PeerDirectory>(
        id, *nodes[i].keys, 0x7f000001u, svcs[i]->listen_port(), dcfg,
        util::Rng(node_seed(opt, id) * 7919 + 3)));
    // Bootstrap happens before round 0; protocol time starts at 0.
    svcs[i]->set_directory(dirs[i].get(), [] { return Time{0}; });
    if (impaired) {
      // Deadlines arm only alongside impairment: the pristine path must
      // stay byte-identical to the pre-chaos harness.
      impairs.push_back(std::make_unique<net::Impairment>(icfg, opt.seed, id));
      svcs[i]->set_impairment(impairs[i].get());
      svcs[i]->set_deadlines(2000, 2000);
    }
  }

  // Bootstrap: everyone dials node 0 and pumps reply-requested shuffles at
  // it until every directory holds full membership. Two pumps suffice on a
  // pristine transport (first registers every node with 0, second pulls 0's
  // complete view); under impairment a seed connection can be reset at any
  // point, so each pump redials dead connections and only shuffles over
  // ready ones — the loop bound covers the retries.
  std::vector<int> seed_conns(opt.nodes, -1);
  for (std::size_t i = 1; i < opt.nodes; ++i) {
    std::string err;
    seed_conns[i] = svcs[i]->connect("127.0.0.1", svcs[0]->listen_port(),
                                     &err);
    if (seed_conns[i] < 0) {
      std::fprintf(stderr, "tribvote_cluster: node %zu dial failed: %s\n", i,
                   err.c_str());
      return 1;
    }
  }
  const auto full_membership = [&] {
    for (const auto& d : dirs) {
      if (d->view_count() != opt.nodes - 1) return false;
    }
    return true;
  };
  const int max_pumps = impaired ? 400 : 40;
  for (int pump = 0; pump < max_pumps && !full_membership(); ++pump) {
    for (std::size_t i = 1; i < opt.nodes; ++i) {
      if (seed_conns[i] < 0 || !svcs[i]->open(seed_conns[i])) {
        seed_conns[i] = svcs[i]->connect("127.0.0.1", svcs[0]->listen_port());
        continue;  // HELLO settles on a later pump
      }
      if (svcs[i]->ready(seed_conns[i])) {
        (void)svcs[i]->send_peer_exchange(seed_conns[i], true);
      }
    }
    (void)loop.run_until(full_membership, 100);
  }
  if (!full_membership()) {
    std::fprintf(stderr,
                 "tribvote_cluster: views never reached full membership\n");
    return 1;
  }

  // One encounter over real sockets, driven to completion — the serial
  // execution order ShardKernel's level schedule is provably equivalent to.
  // Under impairment the exchange can die mid-flight (reset, stall +
  // deadline); each attempt redials and re-runs the encounter from scratch,
  // which is safe because vote merges are idempotent.
  const auto run_encounter = [&](PeerId initiator, PeerId responder,
                                 Time now) {
    net::NodeService& svc = *svcs[initiator];
    const int max_attempts = impaired ? 16 : 1;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      int conn = svc.conn_for_peer(responder);
      if (conn < 0) {
        net::PeerDescriptor d;
        if (!dirs[initiator]->lookup(responder, d)) return false;
        conn = svc.connect(ip_string(d.ip), d.port);
        if (conn < 0) continue;
        if (!loop.run_until(
                [&] { return svc.ready(conn) || !svc.open(conn); },
                kStepMs)) {
          return false;
        }
        if (!svc.open(conn)) continue;  // impaired away mid-HELLO; redial
      }
      const std::uint64_t want =
          svc.engine_counters(conn)->encounters_completed + 1;
      if (!svc.initiate_vote_encounter(conn, now)) {
        svc.close(conn);  // wedged remnant of an earlier attempt
        continue;
      }
      const auto settled = [&] {
        if (!svc.open(conn)) return true;  // reset / deadline close
        return svc.initiator_idle(conn) &&
               svc.engine_counters(conn)->encounters_completed >= want;
      };
      if (!loop.run_until(settled, kStepMs)) return false;
      if (svc.open(conn) &&
          svc.engine_counters(conn)->encounters_completed >= want) {
        return true;
      }
    }
    return false;
  };

  std::vector<pss::PeerSampler*> samplers;
  for (const auto& d : dirs) samplers.push_back(d.get());
  long partition_skips = 0;
  const long executed = run_schedule(
      opt, nodes, samplers,
      [&](const std::vector<sim::Encounter>& encounters, Time now) {
        // Advance every shim's partition clock to this round; an encounter
        // with either endpoint inside a window is skipped, not failed —
        // exactly what the sim's fault plane does with offline peers.
        const auto round =
            static_cast<std::uint64_t>(now / kRoundPeriod) - 1;
        for (const auto& im : impairs) im->set_round(round);
        for (const sim::Encounter& e : encounters) {
          if (impaired && (impairs[e.initiator]->self_offline() ||
                           impairs[e.initiator]->offline(e.responder))) {
            ++partition_skips;
            continue;
          }
          if (!run_encounter(e.initiator, e.responder, now)) {
            std::fprintf(stderr,
                         "tribvote_cluster: encounter %u -> %u failed\n",
                         e.initiator, e.responder);
            return false;
          }
        }
        return true;
      });
  if (executed < 0) return 1;

  for (const auto& svc : svcs) {
    for (const int c : svc->connections()) svc->send_bye(c);
  }
  loop.poll_once(0);  // best-effort flush of the BYEs

  std::uint64_t frames = 0, px_in = 0;
  for (const auto& svc : svcs) {
    frames += svc->stats().frames_in;
    px_in += svc->stats().peer_exchanges_in;
  }
  std::fprintf(stderr, "tribvote_cluster: tcp executed %ld encounters "
                       "(%llu frames_in, %llu peer_exchanges_in)\n",
               executed, static_cast<unsigned long long>(frames),
               static_cast<unsigned long long>(px_in));
  if (impaired) {
    std::uint64_t resets = 0, hello_to = 0, enc_to = 0;
    net::ImpairStats is;
    for (const auto& svc : svcs) {
      resets += svc->stats().impair_resets;
      hello_to += svc->stats().hello_timeouts;
      enc_to += svc->stats().encounter_timeouts;
    }
    for (const auto& im : impairs) {
      const net::ImpairStats& s = im->stats();
      is.chunks += s.chunks;
      is.dropped += s.dropped;
      is.delayed += s.delayed;
      is.corrupted += s.corrupted;
      is.truncated += s.truncated;
      is.stalled += s.stalled;
    }
    std::fprintf(
        stderr,
        "tribvote_cluster: impair chunks %llu dropped %llu delayed %llu "
        "corrupted %llu truncated %llu stalled %llu resets %llu "
        "timeouts %llu/%llu partition_skips %ld\n",
        static_cast<unsigned long long>(is.chunks),
        static_cast<unsigned long long>(is.dropped),
        static_cast<unsigned long long>(is.delayed),
        static_cast<unsigned long long>(is.corrupted),
        static_cast<unsigned long long>(is.truncated),
        static_cast<unsigned long long>(is.stalled),
        static_cast<unsigned long long>(resets),
        static_cast<unsigned long long>(hello_to),
        static_cast<unsigned long long>(enc_to), partition_skips);
  }
  return write_reports(opt, nodes);
}

int usage() {
  std::fprintf(stderr,
               "usage: tribvote_cluster --mode oracle|tcp [--nodes N]"
               " [--rounds R] [--casts K] [--seed S] [--shards M]"
               " [--state-out F] [--impair SPEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  sim::options::CliFlags cli(argc, argv);
  while (cli.next()) {
    if (cli.value("--mode", opt.mode)) {
    } else if (cli.size("--nodes", opt.nodes)) {
    } else if (cli.i32("--rounds", opt.rounds)) {
    } else if (cli.i32("--casts", opt.casts)) {
    } else if (cli.u64("--seed", opt.seed)) {
    } else if (cli.size("--shards", opt.shards)) {
    } else if (cli.value("--state-out", opt.state_out)) {
    } else if (cli.value("--impair", opt.impair_spec)) {
    } else {
      return usage();
    }
  }
  if (cli.error() || opt.nodes < 2 || opt.rounds < 0 || opt.shards < 1 ||
      (opt.mode != "oracle" && opt.mode != "tcp")) {
    return usage();
  }
  sim::options::banner("tribvote_cluster",
                       {{"mode", opt.mode},
                        {"nodes", std::to_string(opt.nodes)},
                        {"rounds", std::to_string(opt.rounds)},
                        {"casts", std::to_string(opt.casts)},
                        {"seed", std::to_string(opt.seed)},
                        {"shards", std::to_string(opt.shards)},
                        {"impair", opt.impair_spec.empty() ? "off"
                                                           : opt.impair_spec}});
  return opt.mode == "oracle" ? run_oracle(opt) : run_tcp(opt);
}
