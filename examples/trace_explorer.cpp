// Trace explorer: generate, save, reload and summarize workload traces.
//
// Shows the trace tooling end to end: the synthetic generator calibrated to
// the paper's filelist.org statistics, the text serialization (the same
// schema a converted real tracker dump would use), and the analyzer used to
// validate calibration.
//
// Usage:
//   ./build/examples/trace_explorer              generate + analyze
//   ./build/examples/trace_explorer <file>       analyze an existing trace
#include <cstdio>
#include <string>

#include "trace/analyzer.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

using namespace tribvote;

namespace {

void print_stats(const trace::Trace& tr) {
  const trace::TraceStats st = trace::analyze(tr);
  std::printf("peers                 %zu\n", st.n_peers);
  std::printf("swarms                %zu\n", st.n_swarms);
  std::printf("sessions              %zu\n", st.n_sessions);
  std::printf("swarm joins           %zu\n", st.n_joins);
  std::printf("tracker events        %zu   (paper: ~23,000)\n", st.n_events);
  std::printf("avg online fraction   %.3f (paper: ~0.50)\n",
              st.avg_online_fraction);
  std::printf("free-rider fraction   %.3f (paper: ~0.25)\n",
              st.free_rider_fraction);
  std::printf("connectable fraction  %.3f\n", st.connectable_fraction);
  std::printf("mean session length   %.2f h\n", st.mean_session_hours);
  std::printf("sessions per peer     %.1f\n", st.mean_sessions_per_peer);
  std::printf("rarely-present peers  %.3f\n", st.rare_peer_fraction);
  std::printf("online at 84h         %zu\n",
              trace::online_count(tr, 84 * kHour));
  const auto firsts = trace::earliest_arrivals(tr, 3);
  std::printf("first three arrivals  %u %u %u (the paper's M1 M2 M3)\n",
              firsts[0], firsts[1], firsts[2]);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::printf("== analyzing %s ==\n", argv[1]);
    try {
      const trace::Trace tr = trace::read_trace_file(argv[1]);
      print_stats(tr);
    } catch (const trace::TraceFormatError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  std::printf("== generating a paper-calibrated 7-day trace ==\n");
  const trace::Trace tr =
      trace::generate_trace(trace::GeneratorParams{}, /*seed=*/7);
  print_stats(tr);

  const std::string path = "example_trace.txt";
  trace::write_trace_file(path, tr);
  std::printf("\nwrote %s; reloading to verify the roundtrip...\n",
              path.c_str());
  const trace::Trace reloaded = trace::read_trace_file(path);
  std::printf("reloaded: %zu sessions, %zu joins — %s\n",
              reloaded.sessions.size(), reloaded.joins.size(),
              reloaded.event_count() == tr.event_count() ? "OK" : "MISMATCH");
  return 0;
}
