// tribvote_node — a real TCP peer speaking PROTOCOL.md, plus the in-process
// sim oracle for the same schedule. Four modes:
//
//   --listen PORT    responder: serve encounters until the peer says BYE,
//                    then report final agent state and exit
//   --connect H:P    initiator: run `--rounds` vote encounters (plus one
//                    moderation encounter when --mods > 0), BYE, report
//   --oracle         run the identical schedule through vote::vote_exchange /
//                    moderation::exchange in one process and report both
//                    endpoints' state — the golden the TCP run must match
//   --swarm          free-running cluster member: listen, bootstrap the
//                    Newscast directory from --bootstrap H:P, and let the
//                    EncounterScheduler discover peers and run encounters
//                    unattended for --rounds scheduler rounds
//                    (scripts/cluster_smoke.sh)
//
// The scripted modes' schedule is a pure function of (--id, --seed,
// --rounds, --casts, --mods): before encounter r each side casts `--casts`
// pseudo-random votes derived from its seed and r. Over TCP the responder
// applies its casts from the ENC_BEGIN hook — the only point ordered before
// the encounter's merges — so a two-process run is bit-identical to the
// oracle (PROTOCOL.md §6), which scripts/net_smoke.sh asserts by diffing
// the reports.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "moderation/moderationcast.hpp"
#include "net/encounter_scheduler.hpp"
#include "net/event_loop.hpp"
#include "net/impairment.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "sim/options.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;

struct Options {
  PeerId id = 1;
  std::uint64_t seed = 1;
  PeerId peer_id = 2;        // oracle mode: the other endpoint
  std::uint64_t peer_seed = 2;
  int listen_port = -1;      // >= 0 → responder (or the swarm endpoint)
  std::string connect_host;  // non-empty → initiator (or swarm bootstrap)
  std::uint16_t connect_port = 0;
  bool oracle = false;
  bool swarm = false;
  std::string advertise_ip = "127.0.0.1";  // swarm: dial-back address
  int max_ms = 0;            // swarm wall-clock budget (0 = auto)
  int rounds = 3;
  int casts = 2;
  int mods = 0;
  std::string state_out;
  std::string port_file;
  bool telemetry = false;
  std::string impair_spec;  // --impair overrides TRIBVOTE_NET_IMPAIR
};

constexpr Time kRoundPeriod = 1000;

Time round_time(int round) { return kRoundPeriod * (round + 1); }

struct ScheduledCast {
  ModeratorId moderator;
  Opinion opinion;
  Time at;
};

// The scripted casts one node applies immediately before encounter `round`.
// Derived only from (seed, round, casts) so every mode regenerates the same
// schedule without any cross-process coordination.
std::vector<ScheduledCast> casts_for(std::uint64_t seed, int round,
                                     int casts) {
  std::vector<ScheduledCast> out;
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (round + 1)));
  const Time base = round_time(round) - kRoundPeriod;
  for (int i = 0; i < casts; ++i) {
    out.push_back({static_cast<ModeratorId>(1 + rng.next_below(24)),
                   rng.next_bool(0.5) ? Opinion::kPositive
                                      : Opinion::kNegative,
                   base + i + 1});
  }
  return out;
}

struct Endpoint {
  crypto::KeyPair keys;
  std::unique_ptr<vote::VoteAgent> vote;
  std::unique_ptr<moderation::ModerationCastAgent> mod;
};

Endpoint make_endpoint(PeerId id, std::uint64_t seed) {
  Endpoint e;
  util::Rng krng(seed);
  e.keys = crypto::generate_keypair(krng);
  e.vote = std::make_unique<vote::VoteAgent>(
      id, e.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  e.mod = std::make_unique<moderation::ModerationCastAgent>(
      id, e.keys, moderation::ModerationCastConfig{},
      [](ModeratorId) { return Opinion::kPositive; },
      util::Rng(seed * 7919 + 2));
  return e;
}

void apply_casts(vote::VoteAgent& agent, std::uint64_t seed, int round,
                 int casts) {
  for (const ScheduledCast& c : casts_for(seed, round, casts)) {
    agent.cast_vote(c.moderator, c.opinion, c.at);
  }
}

// Each side authors its --mods moderations right before the moderation
// encounter; contents derive from (id, seed) only.
void apply_publishes(moderation::ModerationCastAgent& mod, PeerId id,
                     int mods, Time now) {
  for (int j = 0; j < mods; ++j) {
    mod.publish(static_cast<std::uint64_t>(id) * 1000 + j,
                "mod-" + std::to_string(id) + "-" + std::to_string(j), now);
  }
}

void report(std::FILE* f, const Endpoint& e, PeerId id) {
  std::fprintf(f, "node %u digest 0x%016llx\n", id,
               static_cast<unsigned long long>(e.vote->state_digest()));
  std::fprintf(f, "node %u ballots %zu\n", id, e.vote->ballot_box().size());
  std::fprintf(f, "node %u mods %zu\n", id, e.mod->db().size());
}

void write_report(const Options& opt, const Endpoint& self,
                  const Endpoint* peer) {
  report(stdout, self, opt.id);
  if (peer != nullptr) report(stdout, *peer, opt.peer_id);
  if (!opt.state_out.empty()) {
    std::FILE* f = std::fopen(opt.state_out.c_str(), "w");
    if (f != nullptr) {
      report(f, self, opt.id);
      if (peer != nullptr) report(f, *peer, opt.peer_id);
      std::fclose(f);
    }
  }
}

void report_telemetry(const net::NodeService& svc,
                      const telemetry::Registry& registry) {
  const net::NetStats& s = svc.stats();
  std::printf("net frames_in %llu frames_out %llu\n",
              static_cast<unsigned long long>(s.frames_in),
              static_cast<unsigned long long>(s.frames_out));
  std::printf("net bytes_in %llu bytes_out %llu\n",
              static_cast<unsigned long long>(s.bytes_in),
              static_cast<unsigned long long>(s.bytes_out));
  std::printf(
      "net checksum_rejects %llu malformed %llu truncated %llu "
      "protocol_errors %llu reconnects %llu\n",
      static_cast<unsigned long long>(s.checksum_rejects),
      static_cast<unsigned long long>(s.malformed),
      static_cast<unsigned long long>(s.truncated),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.reconnects));
  std::printf("telemetry net.frames_in %llu net.bytes_in %llu\n",
              static_cast<unsigned long long>(
                  registry.total_by_name("net.frames_in")),
              static_cast<unsigned long long>(
                  registry.total_by_name("net.bytes_in")));
}

int run_oracle(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);       // initiator
  Endpoint peer = make_endpoint(opt.peer_id, opt.peer_seed);
  for (int r = 0; r < opt.rounds; ++r) {
    apply_casts(*self.vote, opt.seed, r, opt.casts);
    apply_casts(*peer.vote, opt.peer_seed, r, opt.casts);
    vote::vote_exchange(*self.vote, *peer.vote, round_time(r));
  }
  if (opt.mods > 0) {
    const Time t = round_time(opt.rounds);
    apply_publishes(*self.mod, opt.id, opt.mods, t - 1);
    apply_publishes(*peer.mod, opt.peer_id, opt.mods, t - 1);
    moderation::exchange(*self.mod, *peer.mod, t);
  }
  write_report(opt, self, &peer);
  return 0;
}

constexpr int kStepMs = 10000;  ///< per-condition wait budget

bool drive(net::EventLoop& loop, const std::function<bool()>& done,
           const char* what) {
  if (loop.run_until(done, kStepMs)) return true;
  std::fprintf(stderr, "tribvote_node: timed out waiting for %s\n", what);
  return false;
}

int run_responder(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);
  net::EventLoop loop;
  telemetry::Registry registry(1);
  net::NodeService svc(loop, opt.id, self.keys, *self.vote, self.mod.get(),
                       &registry);
  // Scripted casts ride the ENC_BEGIN hook: ordered before anything of the
  // incoming encounter merges, which is what keeps a two-process run
  // bit-identical to the oracle.
  svc.set_encounter_begin_hook([&](std::uint8_t kind, Time now) {
    if (kind == net::kEncounterVote) {
      apply_casts(*self.vote,
                  opt.seed, static_cast<int>(now / kRoundPeriod) - 1,
                  opt.casts);
    } else {
      apply_publishes(*self.mod, opt.id, opt.mods, now - 1);
    }
  });
  std::string err;
  if (!svc.listen(static_cast<std::uint16_t>(opt.listen_port), &err)) {
    std::fprintf(stderr, "tribvote_node: listen failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("listening %u\n", svc.listen_port());
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << svc.listen_port() << "\n";
  }

  const auto peer_conn = [&]() -> int {
    for (const int c : svc.connections()) {
      if (svc.bye_received(c)) return c;
    }
    return -1;
  };
  if (!drive(loop, [&] { return peer_conn() >= 0; }, "peer BYE")) return 1;
  const int c = peer_conn();
  svc.send_bye(c);
  if (!drive(loop, [&] { return svc.connection_count() == 0; },
             "peer close")) {
    return 1;
  }
  write_report(opt, self, nullptr);
  if (opt.telemetry) report_telemetry(svc, registry);
  return 0;
}

int run_initiator(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);
  net::EventLoop loop;
  telemetry::Registry registry(1);
  net::NodeService svc(loop, opt.id, self.keys, *self.vote, self.mod.get(),
                       &registry);
  std::string err;
  const int c = svc.connect(opt.connect_host, opt.connect_port, &err);
  if (c < 0) {
    std::fprintf(stderr, "tribvote_node: connect failed: %s\n", err.c_str());
    return 1;
  }
  if (!drive(loop, [&] { return svc.ready(c); }, "HELLO")) return 1;

  for (int r = 0; r < opt.rounds; ++r) {
    apply_casts(*self.vote, opt.seed, r, opt.casts);
    if (!svc.initiate_vote_encounter(c, round_time(r))) {
      std::fprintf(stderr, "tribvote_node: initiate failed\n");
      return 1;
    }
    const std::uint64_t want = static_cast<std::uint64_t>(r) + 1;
    if (!drive(loop,
               [&] {
                 return svc.initiator_idle(c) &&
                        svc.engine_counters(c)->encounters_completed == want;
               },
               "encounter")) {
      return 1;
    }
  }
  if (opt.mods > 0) {
    const Time t = round_time(opt.rounds);
    apply_publishes(*self.mod, opt.id, opt.mods, t - 1);
    if (!svc.initiate_moderation_encounter(c, t)) {
      std::fprintf(stderr, "tribvote_node: moderation initiate failed\n");
      return 1;
    }
    if (!drive(loop,
               [&] {
                 return svc.initiator_idle(c) &&
                        svc.engine_counters(c)->mod_completed == 1;
               },
               "moderation encounter")) {
      return 1;
    }
  }

  svc.send_bye(c);
  if (!drive(loop, [&] { return svc.bye_received(c); }, "BYE")) return 1;
  svc.close(c);
  write_report(opt, self, nullptr);
  if (opt.telemetry) report_telemetry(svc, registry);
  return 0;
}

// "a.b.c.d" -> host-order u32; 0 on malformed input.
std::uint32_t parse_ipv4(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return 0;
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

int run_swarm(const Options& opt) {
  if (opt.listen_port < 0) return 2;
  Endpoint self = make_endpoint(opt.id, opt.seed);
  net::EventLoop loop;
  telemetry::Registry registry(1);

  // The chaos plane: --impair wins over TRIBVOTE_NET_IMPAIR; an empty spec
  // leaves the shim detached (the inert path — byte-identical to a build
  // without it). Constructed before the NodeService because ~NodeService
  // detaches its streams from the shim.
  const sim::options::NetOptions nopt = sim::options::net();
  const std::string spec =
      !opt.impair_spec.empty() ? opt.impair_spec : nopt.impair_spec;
  net::ImpairConfig icfg;
  std::string ierr;
  if (!spec.empty() && !net::parse_impair_spec(spec, icfg, &ierr)) {
    std::fprintf(stderr, "tribvote_node: bad --impair spec: %s\n",
                 ierr.c_str());
    return 2;
  }
  std::unique_ptr<net::Impairment> impair;
  if (icfg.enabled()) {
    impair = std::make_unique<net::Impairment>(icfg, opt.seed, opt.id);
  }

  net::NodeService svc(loop, opt.id, self.keys, *self.vote, self.mod.get(),
                       &registry);
  std::string err;
  if (!svc.listen(static_cast<std::uint16_t>(opt.listen_port), &err)) {
    std::fprintf(stderr, "tribvote_node: listen failed: %s\n", err.c_str());
    return 1;
  }
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << svc.listen_port() << "\n";
  }
  std::printf("listening %u\n", svc.listen_port());
  std::fflush(stdout);

  net::PeerDirectoryConfig dcfg;
  dcfg.view_size = nopt.view_size;
  dcfg.shuffle_size = nopt.shuffle_size;
  dcfg.max_dial_failures = nopt.max_dial_failures;
  dcfg.entry_ttl = nopt.entry_ttl;
  dcfg.quarantine_ttl = nopt.quarantine_ttl;
  net::PeerDirectory dir(opt.id, self.keys, parse_ipv4(opt.advertise_ip),
                         svc.listen_port(), dcfg,
                         util::Rng(opt.seed * 7919 + 3));
  dir.set_exchange_probe(
      telemetry::Counter(&registry, registry.counter("pss.exchanges")));

  // Encounter deadlines are on by default in swarm mode: a free-running
  // harness must survive half-open peers unattended.
  if (impair != nullptr) svc.set_impairment(impair.get());
  svc.set_deadlines(nopt.hello_timeout_ms, nopt.encounter_timeout_ms);

  net::EncounterSchedulerConfig scfg;
  scfg.round_ms = nopt.round_ms;
  scfg.max_dials = nopt.max_dials;
  scfg.mod_every = opt.mods > 0 ? 4 : 0;
  net::EncounterScheduler sched(loop, svc, dir, scfg);
  if (impair != nullptr) sched.set_impairment(impair.get());
  if (!opt.connect_host.empty()) {
    sched.add_seed(opt.connect_host, opt.connect_port);
  }
  sched.start();

  // Free-running vote activity: `--casts` pseudo-random casts per scheduler
  // round, applied as rounds complete. Not a bit-identity schedule — the
  // swarm rung asserts convergence and coverage, not digests (§7).
  util::Rng cast_rng(opt.seed ^ 0x5eedca575ULL);
  std::uint64_t casts_applied = 0;
  const auto start = std::chrono::steady_clock::now();
  const int budget_ms =
      opt.max_ms > 0 ? opt.max_ms : opt.rounds * nopt.round_ms * 10 + 10000;
  const auto deadline = start + std::chrono::milliseconds(budget_ms);
  while (sched.stats().rounds < static_cast<std::uint64_t>(opt.rounds) &&
         std::chrono::steady_clock::now() < deadline) {
    loop.poll_once(20);
    while (casts_applied < sched.stats().rounds) {
      for (int k = 0; k < opt.casts; ++k) {
        self.vote->cast_vote(
            static_cast<ModeratorId>(1 + cast_rng.next_below(24)),
            cast_rng.next_bool(0.5) ? Opinion::kPositive
                                    : Opinion::kNegative,
            static_cast<Time>(casts_applied));
      }
      ++casts_applied;
    }
  }
  const bool timed_out =
      sched.stats().rounds < static_cast<std::uint64_t>(opt.rounds);
  sched.stop();
  for (const int c : svc.connections()) svc.send_bye(c);
  loop.poll_once(0);  // best-effort flush of the BYEs

  const net::ExchangeEngine::Counters totals = svc.engine_totals();
  const std::uint64_t completed = totals.encounters_completed;
  const std::uint64_t served = totals.encounters_served;
  const net::EncounterScheduler::Stats& ss = sched.stats();
  const auto emit = [&](std::FILE* f) {
    std::fprintf(f, "node %u view %zu\n", opt.id, dir.view_count());
    std::fprintf(f, "node %u ballots %zu\n", opt.id,
                 self.vote->ballot_box().size());
    std::fprintf(f, "node %u unique_voters %zu\n", opt.id,
                 self.vote->ballot_box().unique_voters());
    std::fprintf(f, "node %u digest 0x%016llx\n", opt.id,
                 static_cast<unsigned long long>(self.vote->state_digest()));
    std::fprintf(
        f,
        "node %u rounds %llu encounters_initiated %llu completed %llu "
        "served %llu shuffles %llu dials %llu dial_failures %llu "
        "empty_samples %llu\n",
        opt.id, static_cast<unsigned long long>(ss.rounds),
        static_cast<unsigned long long>(ss.vote_encounters),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(served),
        static_cast<unsigned long long>(ss.shuffles),
        static_cast<unsigned long long>(ss.dials),
        static_cast<unsigned long long>(ss.dial_failures),
        static_cast<unsigned long long>(ss.empty_samples));
    std::fprintf(
        f, "node %u net.peer_exchanges_in %llu pss.exchanges %llu\n", opt.id,
        static_cast<unsigned long long>(svc.stats().peer_exchanges_in),
        static_cast<unsigned long long>(
            registry.total_by_name("pss.exchanges")));
    std::fprintf(
        f,
        "node %u timeouts hello %llu encounter %llu impair_resets %llu "
        "sched_timeouts %llu partition_skips %llu quarantined %zu\n",
        opt.id, static_cast<unsigned long long>(svc.stats().hello_timeouts),
        static_cast<unsigned long long>(svc.stats().encounter_timeouts),
        static_cast<unsigned long long>(svc.stats().impair_resets),
        static_cast<unsigned long long>(ss.encounter_timeouts),
        static_cast<unsigned long long>(ss.partition_skips),
        dir.quarantined_count());
    if (impair != nullptr) {
      const net::ImpairStats& is = impair->stats();
      std::fprintf(
          f,
          "node %u impair chunks %llu dropped %llu delayed %llu "
          "corrupted %llu truncated %llu stalled %llu ge_bad %llu "
          "part %llu\n",
          opt.id, static_cast<unsigned long long>(is.chunks),
          static_cast<unsigned long long>(is.dropped),
          static_cast<unsigned long long>(is.delayed),
          static_cast<unsigned long long>(is.corrupted),
          static_cast<unsigned long long>(is.truncated),
          static_cast<unsigned long long>(is.stalled),
          static_cast<unsigned long long>(is.ge_bad_chunks),
          static_cast<unsigned long long>(is.partition_drops));
    }
  };
  emit(stdout);
  if (!opt.state_out.empty()) {
    std::FILE* f = std::fopen(opt.state_out.c_str(), "w");
    if (f != nullptr) {
      emit(f);
      std::fclose(f);
    }
  }
  if (opt.telemetry) report_telemetry(svc, registry);
  if (timed_out) {
    std::fprintf(stderr, "tribvote_node: swarm hit wall-clock budget at "
                         "round %llu/%d\n",
                 static_cast<unsigned long long>(ss.rounds), opt.rounds);
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tribvote_node --id N --seed S --listen PORT [--port-file F]\n"
      "                [--casts K] [--mods M] [--state-out F] [--telemetry]\n"
      "  tribvote_node --id N --seed S --connect HOST:PORT --rounds R\n"
      "                [--casts K] [--mods M] [--state-out F] [--telemetry]\n"
      "  tribvote_node --oracle --id N --seed S --peer-id N2 --peer-seed S2\n"
      "                --rounds R [--casts K] [--mods M] [--state-out F]\n"
      "  tribvote_node --swarm --id N --seed S --listen PORT --rounds R\n"
      "                [--bootstrap HOST:PORT] [--advertise-ip A.B.C.D]\n"
      "                [--max-ms T] [--casts K] [--mods M] [--state-out F]\n"
      "                [--port-file F] [--telemetry] [--impair SPEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  sim::options::CliFlags cli(argc, argv);
  while (cli.next()) {
    std::uint32_t id = 0;
    if (cli.is_switch("--oracle")) {
      opt.oracle = true;
    } else if (cli.is_switch("--swarm")) {
      opt.swarm = true;
    } else if (cli.is_switch("--telemetry")) {
      opt.telemetry = true;
    } else if (cli.u32("--id", id)) {
      opt.id = static_cast<PeerId>(id);
    } else if (cli.u64("--seed", opt.seed)) {
    } else if (cli.u32("--peer-id", id)) {
      opt.peer_id = static_cast<PeerId>(id);
    } else if (cli.u64("--peer-seed", opt.peer_seed)) {
    } else if (cli.i32("--listen", opt.listen_port)) {
    } else if (cli.host_port("--connect", opt.connect_host,
                             opt.connect_port) ||
               cli.host_port("--bootstrap", opt.connect_host,
                             opt.connect_port)) {
    } else if (cli.i32("--rounds", opt.rounds)) {
    } else if (cli.i32("--casts", opt.casts)) {
    } else if (cli.i32("--mods", opt.mods)) {
    } else if (cli.i32("--max-ms", opt.max_ms)) {
    } else if (cli.value("--advertise-ip", opt.advertise_ip)) {
    } else if (cli.value("--impair", opt.impair_spec)) {
    } else if (cli.value("--state-out", opt.state_out)) {
    } else if (cli.value("--port-file", opt.port_file)) {
    } else {
      return usage();
    }
  }
  if (cli.error()) return usage();

  const sim::options::NetOptions nopt = sim::options::net();
  sim::options::banner(
      "tribvote_node",
      {{"mode", opt.swarm ? "swarm"
                          : opt.oracle ? "oracle"
                                       : opt.listen_port >= 0 ? "listen"
                                                              : "connect"},
       {"id", std::to_string(opt.id)},
       {"seed", std::to_string(opt.seed)},
       {"rounds", std::to_string(opt.rounds)},
       {"casts", std::to_string(opt.casts)},
       {"mods", std::to_string(opt.mods)},
       {"view", std::to_string(nopt.view_size)},
       {"shuffle", std::to_string(nopt.shuffle_size)},
       {"round_ms", std::to_string(nopt.round_ms)},
       {"dials", std::to_string(nopt.max_dials)},
       {"impair", opt.impair_spec.empty()
                      ? (nopt.impair_spec.empty() ? "off" : nopt.impair_spec)
                      : opt.impair_spec}});

  if (opt.swarm) return run_swarm(opt);
  if (opt.oracle) return run_oracle(opt);
  if (opt.listen_port >= 0) return run_responder(opt);
  if (!opt.connect_host.empty()) return run_initiator(opt);
  return usage();
}
