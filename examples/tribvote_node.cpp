// tribvote_node — a real TCP peer speaking PROTOCOL.md, plus the in-process
// sim oracle for the same schedule. Three modes:
//
//   --listen PORT    responder: serve encounters until the peer says BYE,
//                    then report final agent state and exit
//   --connect H:P    initiator: run `--rounds` vote encounters (plus one
//                    moderation encounter when --mods > 0), BYE, report
//   --oracle         run the identical schedule through vote::vote_exchange /
//                    moderation::exchange in one process and report both
//                    endpoints' state — the golden the TCP run must match
//
// The schedule is a pure function of (--id, --seed, --rounds, --casts,
// --mods): before encounter r each side casts `--casts` pseudo-random votes
// derived from its seed and r. Over TCP the responder applies its casts from
// the ENC_BEGIN hook — the only point ordered before the encounter's merges
// — so a two-process run is bit-identical to the oracle (PROTOCOL.md §6),
// which scripts/net_smoke.sh asserts by diffing the reports.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "moderation/moderationcast.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace {

using namespace tribvote;

struct Options {
  PeerId id = 1;
  std::uint64_t seed = 1;
  PeerId peer_id = 2;        // oracle mode: the other endpoint
  std::uint64_t peer_seed = 2;
  int listen_port = -1;      // >= 0 → responder
  std::string connect_host;  // non-empty → initiator
  std::uint16_t connect_port = 0;
  bool oracle = false;
  int rounds = 3;
  int casts = 2;
  int mods = 0;
  std::string state_out;
  std::string port_file;
  bool telemetry = false;
};

constexpr Time kRoundPeriod = 1000;

Time round_time(int round) { return kRoundPeriod * (round + 1); }

struct ScheduledCast {
  ModeratorId moderator;
  Opinion opinion;
  Time at;
};

// The scripted casts one node applies immediately before encounter `round`.
// Derived only from (seed, round, casts) so every mode regenerates the same
// schedule without any cross-process coordination.
std::vector<ScheduledCast> casts_for(std::uint64_t seed, int round,
                                     int casts) {
  std::vector<ScheduledCast> out;
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (round + 1)));
  const Time base = round_time(round) - kRoundPeriod;
  for (int i = 0; i < casts; ++i) {
    out.push_back({static_cast<ModeratorId>(1 + rng.next_below(24)),
                   rng.next_bool(0.5) ? Opinion::kPositive
                                      : Opinion::kNegative,
                   base + i + 1});
  }
  return out;
}

struct Endpoint {
  crypto::KeyPair keys;
  std::unique_ptr<vote::VoteAgent> vote;
  std::unique_ptr<moderation::ModerationCastAgent> mod;
};

Endpoint make_endpoint(PeerId id, std::uint64_t seed) {
  Endpoint e;
  util::Rng krng(seed);
  e.keys = crypto::generate_keypair(krng);
  e.vote = std::make_unique<vote::VoteAgent>(
      id, e.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  e.mod = std::make_unique<moderation::ModerationCastAgent>(
      id, e.keys, moderation::ModerationCastConfig{},
      [](ModeratorId) { return Opinion::kPositive; },
      util::Rng(seed * 7919 + 2));
  return e;
}

void apply_casts(vote::VoteAgent& agent, std::uint64_t seed, int round,
                 int casts) {
  for (const ScheduledCast& c : casts_for(seed, round, casts)) {
    agent.cast_vote(c.moderator, c.opinion, c.at);
  }
}

// Each side authors its --mods moderations right before the moderation
// encounter; contents derive from (id, seed) only.
void apply_publishes(moderation::ModerationCastAgent& mod, PeerId id,
                     int mods, Time now) {
  for (int j = 0; j < mods; ++j) {
    mod.publish(static_cast<std::uint64_t>(id) * 1000 + j,
                "mod-" + std::to_string(id) + "-" + std::to_string(j), now);
  }
}

void report(std::FILE* f, const Endpoint& e, PeerId id) {
  std::fprintf(f, "node %u digest 0x%016llx\n", id,
               static_cast<unsigned long long>(e.vote->state_digest()));
  std::fprintf(f, "node %u ballots %zu\n", id, e.vote->ballot_box().size());
  std::fprintf(f, "node %u mods %zu\n", id, e.mod->db().size());
}

void write_report(const Options& opt, const Endpoint& self,
                  const Endpoint* peer) {
  report(stdout, self, opt.id);
  if (peer != nullptr) report(stdout, *peer, opt.peer_id);
  if (!opt.state_out.empty()) {
    std::FILE* f = std::fopen(opt.state_out.c_str(), "w");
    if (f != nullptr) {
      report(f, self, opt.id);
      if (peer != nullptr) report(f, *peer, opt.peer_id);
      std::fclose(f);
    }
  }
}

void report_telemetry(const net::NodeService& svc,
                      const telemetry::Registry& registry) {
  const net::NetStats& s = svc.stats();
  std::printf("net frames_in %llu frames_out %llu\n",
              static_cast<unsigned long long>(s.frames_in),
              static_cast<unsigned long long>(s.frames_out));
  std::printf("net bytes_in %llu bytes_out %llu\n",
              static_cast<unsigned long long>(s.bytes_in),
              static_cast<unsigned long long>(s.bytes_out));
  std::printf(
      "net checksum_rejects %llu malformed %llu truncated %llu "
      "protocol_errors %llu reconnects %llu\n",
      static_cast<unsigned long long>(s.checksum_rejects),
      static_cast<unsigned long long>(s.malformed),
      static_cast<unsigned long long>(s.truncated),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.reconnects));
  std::printf("telemetry net.frames_in %llu net.bytes_in %llu\n",
              static_cast<unsigned long long>(
                  registry.total_by_name("net.frames_in")),
              static_cast<unsigned long long>(
                  registry.total_by_name("net.bytes_in")));
}

int run_oracle(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);       // initiator
  Endpoint peer = make_endpoint(opt.peer_id, opt.peer_seed);
  for (int r = 0; r < opt.rounds; ++r) {
    apply_casts(*self.vote, opt.seed, r, opt.casts);
    apply_casts(*peer.vote, opt.peer_seed, r, opt.casts);
    vote::vote_exchange(*self.vote, *peer.vote, round_time(r));
  }
  if (opt.mods > 0) {
    const Time t = round_time(opt.rounds);
    apply_publishes(*self.mod, opt.id, opt.mods, t - 1);
    apply_publishes(*peer.mod, opt.peer_id, opt.mods, t - 1);
    moderation::exchange(*self.mod, *peer.mod, t);
  }
  write_report(opt, self, &peer);
  return 0;
}

constexpr int kStepMs = 10000;  ///< per-condition wait budget

bool drive(net::EventLoop& loop, const std::function<bool()>& done,
           const char* what) {
  if (loop.run_until(done, kStepMs)) return true;
  std::fprintf(stderr, "tribvote_node: timed out waiting for %s\n", what);
  return false;
}

int run_responder(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);
  net::EventLoop loop;
  telemetry::Registry registry(1);
  net::NodeService svc(loop, opt.id, self.keys, *self.vote, self.mod.get(),
                       &registry);
  // Scripted casts ride the ENC_BEGIN hook: ordered before anything of the
  // incoming encounter merges, which is what keeps a two-process run
  // bit-identical to the oracle.
  svc.set_encounter_begin_hook([&](std::uint8_t kind, Time now) {
    if (kind == net::kEncounterVote) {
      apply_casts(*self.vote,
                  opt.seed, static_cast<int>(now / kRoundPeriod) - 1,
                  opt.casts);
    } else {
      apply_publishes(*self.mod, opt.id, opt.mods, now - 1);
    }
  });
  std::string err;
  if (!svc.listen(static_cast<std::uint16_t>(opt.listen_port), &err)) {
    std::fprintf(stderr, "tribvote_node: listen failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("listening %u\n", svc.listen_port());
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << svc.listen_port() << "\n";
  }

  const auto peer_conn = [&]() -> int {
    for (const int c : svc.connections()) {
      if (svc.bye_received(c)) return c;
    }
    return -1;
  };
  if (!drive(loop, [&] { return peer_conn() >= 0; }, "peer BYE")) return 1;
  const int c = peer_conn();
  svc.send_bye(c);
  if (!drive(loop, [&] { return svc.connection_count() == 0; },
             "peer close")) {
    return 1;
  }
  write_report(opt, self, nullptr);
  if (opt.telemetry) report_telemetry(svc, registry);
  return 0;
}

int run_initiator(const Options& opt) {
  Endpoint self = make_endpoint(opt.id, opt.seed);
  net::EventLoop loop;
  telemetry::Registry registry(1);
  net::NodeService svc(loop, opt.id, self.keys, *self.vote, self.mod.get(),
                       &registry);
  std::string err;
  const int c = svc.connect(opt.connect_host, opt.connect_port, &err);
  if (c < 0) {
    std::fprintf(stderr, "tribvote_node: connect failed: %s\n", err.c_str());
    return 1;
  }
  if (!drive(loop, [&] { return svc.ready(c); }, "HELLO")) return 1;

  for (int r = 0; r < opt.rounds; ++r) {
    apply_casts(*self.vote, opt.seed, r, opt.casts);
    if (!svc.initiate_vote_encounter(c, round_time(r))) {
      std::fprintf(stderr, "tribvote_node: initiate failed\n");
      return 1;
    }
    const std::uint64_t want = static_cast<std::uint64_t>(r) + 1;
    if (!drive(loop,
               [&] {
                 return svc.initiator_idle(c) &&
                        svc.engine_counters(c)->encounters_completed == want;
               },
               "encounter")) {
      return 1;
    }
  }
  if (opt.mods > 0) {
    const Time t = round_time(opt.rounds);
    apply_publishes(*self.mod, opt.id, opt.mods, t - 1);
    if (!svc.initiate_moderation_encounter(c, t)) {
      std::fprintf(stderr, "tribvote_node: moderation initiate failed\n");
      return 1;
    }
    if (!drive(loop,
               [&] {
                 return svc.initiator_idle(c) &&
                        svc.engine_counters(c)->mod_completed == 1;
               },
               "moderation encounter")) {
      return 1;
    }
  }

  svc.send_bye(c);
  if (!drive(loop, [&] { return svc.bye_received(c); }, "BYE")) return 1;
  svc.close(c);
  write_report(opt, self, nullptr);
  if (opt.telemetry) report_telemetry(svc, registry);
  return 0;
}

bool parse_host_port(const std::string& arg, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  host = arg.substr(0, colon);
  const long p = std::strtol(arg.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tribvote_node --id N --seed S --listen PORT [--port-file F]\n"
      "                [--casts K] [--mods M] [--state-out F] [--telemetry]\n"
      "  tribvote_node --id N --seed S --connect HOST:PORT --rounds R\n"
      "                [--casts K] [--mods M] [--state-out F] [--telemetry]\n"
      "  tribvote_node --oracle --id N --seed S --peer-id N2 --peer-seed S2\n"
      "                --rounds R [--casts K] [--mods M] [--state-out F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--oracle") {
      opt.oracle = true;
    } else if (a == "--telemetry") {
      opt.telemetry = true;
    } else if ((v = next()) == nullptr) {
      return usage();
    } else if (a == "--id") {
      opt.id = static_cast<PeerId>(std::strtoul(v, nullptr, 10));
    } else if (a == "--seed") {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--peer-id") {
      opt.peer_id = static_cast<PeerId>(std::strtoul(v, nullptr, 10));
    } else if (a == "--peer-seed") {
      opt.peer_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--listen") {
      opt.listen_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (a == "--connect") {
      if (!parse_host_port(v, opt.connect_host, opt.connect_port)) {
        return usage();
      }
    } else if (a == "--rounds") {
      opt.rounds = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (a == "--casts") {
      opt.casts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (a == "--mods") {
      opt.mods = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (a == "--state-out") {
      opt.state_out = v;
    } else if (a == "--port-file") {
      opt.port_file = v;
    } else {
      return usage();
    }
  }
  if (opt.oracle) return run_oracle(opt);
  if (opt.listen_port >= 0) return run_responder(opt);
  if (!opt.connect_host.empty()) return run_initiator(opt);
  return usage();
}
